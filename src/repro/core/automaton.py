"""Distributed automata and the detection/acceptance/fairness class taxonomy.

A distributed automaton is a pair ``A = (M, Σ)`` of a machine and a scheduler
subject to the *consistency condition*: on every graph, either all fair runs
accept or all fair runs reject (Section 2.1).  Esparza & Reiter classify
automata by three machine/scheduler features (the selection axis collapses):

========== ========================= =========================
letter      lowercase                 uppercase
========== ========================= =========================
detection   ``d`` non-counting (β=1)  ``D`` counting (β≥2)
acceptance  ``a`` halting             ``A`` stable consensus
fairness    ``f`` adversarial         ``F`` pseudo-stochastic
========== ========================= =========================

:class:`AutomatonClass` represents one of the eight strings ``xyz``;
:class:`DistributedAutomaton` bundles a machine with such a class (plus a
selection mode, defaulting to exclusive as the paper assumes w.l.o.g.).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.core.graphs import LabeledGraph
from repro.core.machine import DistributedMachine
from repro.core.scheduler import Fairness, Scheduler, SelectionMode


class Detection(Enum):
    """The detection axis: non-counting ``d`` (β=1) vs counting ``D`` (β≥2)."""

    NON_COUNTING = "d"
    COUNTING = "D"


class Acceptance(Enum):
    """The acceptance axis: halting ``a`` vs stable consensus ``A``."""

    HALTING = "a"
    STABLE_CONSENSUS = "A"


@dataclass(frozen=True)
class AutomatonClass:
    """One of the eight classes ``xyz ∈ {d,D} × {a,A} × {f,F}``."""

    detection: Detection
    acceptance: Acceptance
    fairness: Fairness

    @classmethod
    def parse(cls, symbol: str) -> "AutomatonClass":
        """Parse a three-letter class string such as ``"DAf"`` or ``"daF"``."""
        if len(symbol) != 3:
            raise ValueError(f"class string must have three letters, got {symbol!r}")
        det, acc, fair = symbol
        if det not in "dD" or acc not in "aA" or fair not in "fF":
            raise ValueError(f"malformed class string {symbol!r}")
        return cls(
            detection=Detection.COUNTING if det == "D" else Detection.NON_COUNTING,
            acceptance=Acceptance.STABLE_CONSENSUS if acc == "A" else Acceptance.HALTING,
            fairness=Fairness.PSEUDO_STOCHASTIC if fair == "F" else Fairness.ADVERSARIAL,
        )

    @property
    def symbol(self) -> str:
        return (
            ("D" if self.detection is Detection.COUNTING else "d")
            + ("A" if self.acceptance is Acceptance.STABLE_CONSENSUS else "a")
            + ("F" if self.fairness is Fairness.PSEUDO_STOCHASTIC else "f")
        )

    @property
    def is_counting(self) -> bool:
        return self.detection is Detection.COUNTING

    @property
    def is_halting(self) -> bool:
        return self.acceptance is Acceptance.HALTING

    @property
    def is_pseudo_stochastic(self) -> bool:
        return self.fairness is Fairness.PSEUDO_STOCHASTIC

    def at_least_as_strong_as(self, other: "AutomatonClass") -> bool:
        """The natural pointwise "capital beats lowercase" order on classes."""
        strong = {
            Detection.COUNTING: 1,
            Detection.NON_COUNTING: 0,
            Acceptance.STABLE_CONSENSUS: 1,
            Acceptance.HALTING: 0,
            Fairness.PSEUDO_STOCHASTIC: 1,
            Fairness.ADVERSARIAL: 0,
        }
        return (
            strong[self.detection] >= strong[other.detection]
            and strong[self.acceptance] >= strong[other.acceptance]
            and strong[self.fairness] >= strong[other.fairness]
        )

    def __str__(self) -> str:
        return self.symbol


ALL_CLASSES: tuple[AutomatonClass, ...] = tuple(
    AutomatonClass.parse(d + a + f) for d in "dD" for a in "aA" for f in "fF"
)


@dataclass(frozen=True)
class DistributedAutomaton:
    """A machine together with its class (and a selection mode).

    The selection mode defaults to exclusive, which is what the paper assumes
    without loss of generality after the collapse theorem of [16]; the
    verification engine can re-run any automaton under a different mode to
    check the collapse empirically.
    """

    machine: DistributedMachine
    automaton_class: AutomatonClass
    selection: SelectionMode = SelectionMode.EXCLUSIVE
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.automaton_class.is_counting and self.machine.beta < 2:
            raise ValueError(
                "a counting (D..) automaton needs a machine with counting bound >= 2"
            )
        if not self.automaton_class.is_counting and self.machine.beta != 1:
            raise ValueError(
                "a non-counting (d..) automaton must use counting bound exactly 1"
            )
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.machine.name}[{self.automaton_class.symbol}]"
            )

    @property
    def scheduler(self) -> Scheduler:
        return Scheduler(self.selection, self.automaton_class.fairness)

    def with_selection(self, mode: SelectionMode) -> "DistributedAutomaton":
        """The same automaton under a different selection constraint."""
        return replace(self, selection=mode)

    def permitted_selections(self, graph: LabeledGraph):
        return self.scheduler.permitted_selections(graph)

    def __repr__(self) -> str:
        return (
            f"DistributedAutomaton(name={self.name!r}, "
            f"class={self.automaton_class.symbol}, selection={self.selection.value})"
        )


def automaton(
    machine: DistributedMachine,
    class_symbol: str,
    selection: SelectionMode = SelectionMode.EXCLUSIVE,
    name: str = "",
) -> DistributedAutomaton:
    """Convenience constructor: ``automaton(machine, "DAf")``."""
    return DistributedAutomaton(
        machine=machine,
        automaton_class=AutomatonClass.parse(class_symbol),
        selection=selection,
        name=name,
    )
