"""Exact decision of distributed automata on concrete graphs.

For graphs whose reachable configuration space fits in memory this module
decides — *exactly*, quantifying over all fair schedules — whether an
automaton accepts, rejects, or fails the consistency condition.  The two
fairness notions require different machinery:

Pseudo-stochastic fairness (``F``)
    A fair run eventually gets trapped in (and then visits all of) a *bottom
    strongly connected component* of the reachable configuration graph: from a
    configuration visited infinitely often every reachable configuration is
    again visited infinitely often (the argument of Lemma B.12 / Appendix
    D.2).  Hence all fair runs accept iff every reachable bottom SCC consists
    solely of accepting configurations, and symmetrically for rejection.  This
    is the same characterisation the paper uses to place DAF inside NL /
    NSPACE(n).

Adversarial fairness (``f``)
    A fair schedule only has to select every node infinitely often.  There is
    a non-accepting fair run iff some non-accepting configuration ``C`` lies on
    a cycle of the configuration graph whose selections jointly cover every
    node (a *fair lasso*).  We search for such lassos explicitly in the
    product of the configuration graph with the subset lattice of covered
    nodes.

Both procedures are exponential in the number of nodes; they are intended for
the small witness graphs used in tests and in the Figure 1 experiments
(typically 3–7 nodes), exactly like the configuration-space arguments in the
paper's proofs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.automaton import DistributedAutomaton
from repro.core.configuration import (
    Configuration,
    initial_configuration,
    is_accepting_configuration,
    is_rejecting_configuration,
    successor,
)
from repro.core.graphs import LabeledGraph
from repro.core.machine import DistributedMachine
from repro.core.scheduler import Fairness, Selection, SelectionMode, permitted_selections
from repro.core.simulation import Verdict


class StateSpaceTooLarge(RuntimeError):
    """Raised when the reachable configuration space exceeds the exploration budget."""


@dataclass
class ConfigurationGraph:
    """The reachable configuration graph of a machine on a graph.

    ``successors[C]`` lists the distinct successor configurations of ``C``
    (over all permitted selections); ``edges[C]`` retains, for every distinct
    successor, one selection witnessing the edge plus the set of all
    selections inducing it (needed by the fair-lasso search, which must know
    which nodes can be covered while traversing an edge).
    """

    initial: Configuration
    configurations: list[Configuration]
    successors: dict[Configuration, tuple[Configuration, ...]]
    edge_selections: dict[tuple[Configuration, Configuration], tuple[Selection, ...]]

    @property
    def size(self) -> int:
        return len(self.configurations)


def explore(
    machine: DistributedMachine,
    graph: LabeledGraph,
    selection_mode: SelectionMode = SelectionMode.EXCLUSIVE,
    start: Configuration | None = None,
    max_configurations: int = 200_000,
) -> ConfigurationGraph:
    """Breadth-first exploration of the reachable configuration graph."""
    selections = permitted_selections(graph, selection_mode)
    initial = start if start is not None else initial_configuration(machine, graph)
    seen: set[Configuration] = {initial}
    order: list[Configuration] = [initial]
    successors: dict[Configuration, tuple[Configuration, ...]] = {}
    edge_selections: dict[tuple[Configuration, Configuration], tuple[Selection, ...]] = {}
    queue: deque[Configuration] = deque([initial])
    while queue:
        configuration = queue.popleft()
        succ_map: dict[Configuration, list[Selection]] = {}
        for selection in selections:
            nxt = successor(machine, graph, configuration, selection)
            succ_map.setdefault(nxt, []).append(selection)
        successors[configuration] = tuple(succ_map.keys())
        for nxt, sels in succ_map.items():
            edge_selections[(configuration, nxt)] = tuple(sels)
            if nxt not in seen:
                seen.add(nxt)
                order.append(nxt)
                queue.append(nxt)
                if len(seen) > max_configurations:
                    raise StateSpaceTooLarge(
                        f"more than {max_configurations} reachable configurations"
                    )
    return ConfigurationGraph(
        initial=initial,
        configurations=order,
        successors=successors,
        edge_selections=edge_selections,
    )


# ---------------------------------------------------------------------- #
# Strongly connected components (iterative Tarjan)
# ---------------------------------------------------------------------- #
def strongly_connected_components(
    config_graph: ConfigurationGraph,
) -> list[list[Configuration]]:
    """Tarjan's algorithm, iterative to avoid recursion limits."""
    index_counter = 0
    indices: dict[Configuration, int] = {}
    lowlinks: dict[Configuration, int] = {}
    on_stack: set[Configuration] = set()
    stack: list[Configuration] = []
    components: list[list[Configuration]] = []

    for root in config_graph.configurations:
        if root in indices:
            continue
        work: list[tuple[Configuration, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indices[node] = index_counter
                lowlinks[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = config_graph.successors[node]
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in indices:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[child])
            if recurse:
                continue
            work[-1] = (node, child_index)
            if child_index >= len(children):
                work.pop()
                if lowlinks[node] == indices[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
    return components


def bottom_sccs(config_graph: ConfigurationGraph) -> list[list[Configuration]]:
    """SCCs with no edge leaving them (the possible ``Inf`` sets of fair F-runs)."""
    components = strongly_connected_components(config_graph)
    component_of: dict[Configuration, int] = {}
    for idx, component in enumerate(components):
        for configuration in component:
            component_of[configuration] = idx
    bottoms: list[list[Configuration]] = []
    for idx, component in enumerate(components):
        is_bottom = True
        for configuration in component:
            for nxt in config_graph.successors[configuration]:
                if component_of[nxt] != idx:
                    is_bottom = False
                    break
            if not is_bottom:
                break
        if is_bottom:
            bottoms.append(component)
    return bottoms


# ---------------------------------------------------------------------- #
# Decision under pseudo-stochastic fairness
# ---------------------------------------------------------------------- #
@dataclass
class DecisionReport:
    """The result of an exact decision together with diagnostic data."""

    verdict: Verdict
    configuration_count: int
    bottom_scc_count: int = 0
    witness: Configuration | None = None
    detail: str = ""


def decide_pseudo_stochastic(
    machine: DistributedMachine,
    graph: LabeledGraph,
    selection_mode: SelectionMode = SelectionMode.EXCLUSIVE,
    max_configurations: int = 200_000,
) -> DecisionReport:
    """Decide acceptance by stable consensus under pseudo-stochastic fairness.

    All fair runs accept iff every reachable bottom SCC contains only
    accepting configurations; they all reject iff every bottom SCC contains
    only rejecting configurations.  Any other situation violates the
    consistency condition on this graph and is reported as INCONSISTENT.
    """
    config_graph = explore(
        machine, graph, selection_mode, max_configurations=max_configurations
    )
    bottoms = bottom_sccs(config_graph)
    all_accepting = True
    all_rejecting = True
    witness: Configuration | None = None
    for component in bottoms:
        for configuration in component:
            if not is_accepting_configuration(machine, configuration):
                if all_accepting:
                    witness = configuration
                all_accepting = False
            if not is_rejecting_configuration(machine, configuration):
                all_rejecting = False
    if all_accepting and not all_rejecting:
        verdict = Verdict.ACCEPT
    elif all_rejecting and not all_accepting:
        verdict = Verdict.REJECT
    else:
        verdict = Verdict.INCONSISTENT
    return DecisionReport(
        verdict=verdict,
        configuration_count=config_graph.size,
        bottom_scc_count=len(bottoms),
        witness=witness,
        detail="bottom-SCC analysis (pseudo-stochastic fairness)",
    )


def reachable_stably_accepting(
    machine: DistributedMachine,
    graph: LabeledGraph,
    selection_mode: SelectionMode = SelectionMode.EXCLUSIVE,
    accepting: bool = True,
    max_configurations: int = 200_000,
) -> bool:
    """Whether some reachable configuration is *stably* accepting (or rejecting).

    "Stably accepting" means every configuration reachable from it is an
    accepting consensus — the notion used in the proof of Lemma 3.5 (there
    for rejection).  Under pseudo-stochastic fairness this is equivalent to
    the existence of an accepting fair run.
    """
    config_graph = explore(
        machine, graph, selection_mode, max_configurations=max_configurations
    )
    test = (
        is_accepting_configuration if accepting else is_rejecting_configuration
    )
    # A configuration is stably accepting iff every configuration in its
    # forward closure is accepting.  Compute by a reverse fixed point: start
    # with the non-accepting configurations and propagate "can reach a
    # non-accepting configuration" backwards.
    bad = {c for c in config_graph.configurations if not test(machine, c)}
    predecessors: dict[Configuration, list[Configuration]] = {
        c: [] for c in config_graph.configurations
    }
    for configuration in config_graph.configurations:
        for nxt in config_graph.successors[configuration]:
            predecessors[nxt].append(configuration)
    can_reach_bad: set[Configuration] = set(bad)
    queue = deque(bad)
    while queue:
        configuration = queue.popleft()
        for pred in predecessors[configuration]:
            if pred not in can_reach_bad:
                can_reach_bad.add(pred)
                queue.append(pred)
    return any(c not in can_reach_bad for c in config_graph.configurations)


# ---------------------------------------------------------------------- #
# Decision under adversarial fairness
# ---------------------------------------------------------------------- #
def _exists_fair_lasso(
    config_graph: ConfigurationGraph,
    graph: LabeledGraph,
    anchors: list[Configuration],
) -> Configuration | None:
    """Is some ``anchor`` configuration on a cycle whose selections cover all nodes?

    Returns a witness anchor or ``None``.  The search runs, for every anchor,
    a BFS over pairs (configuration, set of nodes covered so far) within the
    anchor's SCC.
    """
    components = strongly_connected_components(config_graph)
    component_of: dict[Configuration, int] = {}
    for idx, component in enumerate(components):
        for configuration in component:
            component_of[configuration] = idx
    component_sets = [set(component) for component in components]
    all_nodes = frozenset(graph.nodes())

    for anchor in anchors:
        component = component_sets[component_of[anchor]]
        # A cycle through the anchor exists only if its SCC is non-trivial or
        # it has a self-loop.
        has_self_loop = anchor in config_graph.successors[anchor]
        if len(component) == 1 and not has_self_loop:
            continue
        # BFS over (configuration, covered) starting from the anchor.
        start = (anchor, frozenset())
        seen: set[tuple[Configuration, frozenset[int]]] = {start}
        queue: deque[tuple[Configuration, frozenset[int]]] = deque([start])
        found = False
        while queue and not found:
            configuration, covered = queue.popleft()
            for nxt in config_graph.successors[configuration]:
                if nxt not in component:
                    continue
                for selection in config_graph.edge_selections[(configuration, nxt)]:
                    new_covered = covered | selection
                    if nxt == anchor and new_covered == all_nodes:
                        found = True
                        break
                    state = (nxt, new_covered)
                    if state not in seen:
                        seen.add(state)
                        queue.append(state)
                if found:
                    break
        if found:
            return anchor
    return None


def decide_adversarial(
    machine: DistributedMachine,
    graph: LabeledGraph,
    selection_mode: SelectionMode = SelectionMode.EXCLUSIVE,
    max_configurations: int = 200_000,
) -> DecisionReport:
    """Decide acceptance by stable consensus under adversarial fairness.

    All fair runs accept iff there is *no* fair lasso through a non-accepting
    configuration; all fair runs reject iff there is no fair lasso through a
    non-rejecting configuration.  If neither holds the automaton is
    inconsistent on this graph; both cannot hold simultaneously (the
    synchronous run is always fair and always exists).
    """
    config_graph = explore(
        machine, graph, selection_mode, max_configurations=max_configurations
    )
    non_accepting = [
        c
        for c in config_graph.configurations
        if not is_accepting_configuration(machine, c)
    ]
    non_rejecting = [
        c
        for c in config_graph.configurations
        if not is_rejecting_configuration(machine, c)
    ]
    lasso_breaking_accept = _exists_fair_lasso(config_graph, graph, non_accepting)
    all_accept = lasso_breaking_accept is None
    lasso_breaking_reject = _exists_fair_lasso(config_graph, graph, non_rejecting)
    all_reject = lasso_breaking_reject is None
    if all_accept and not all_reject:
        verdict = Verdict.ACCEPT
        witness = None
    elif all_reject and not all_accept:
        verdict = Verdict.REJECT
        witness = None
    else:
        verdict = Verdict.INCONSISTENT
        witness = lasso_breaking_accept or lasso_breaking_reject
    return DecisionReport(
        verdict=verdict,
        configuration_count=config_graph.size,
        witness=witness,
        detail="fair-lasso analysis (adversarial fairness)",
    )


# ---------------------------------------------------------------------- #
# Top-level entry points
# ---------------------------------------------------------------------- #
def decide(
    automaton: DistributedAutomaton,
    graph: LabeledGraph,
    max_configurations: int = 200_000,
) -> DecisionReport:
    """Exactly decide an automaton on a graph, honouring its fairness class.

    Synchronous automata have a single permitted selection, so the two
    fairness notions coincide and the (deterministic) synchronous run decides.
    """
    if automaton.selection is SelectionMode.SYNCHRONOUS:
        return decide_pseudo_stochastic(
            automaton.machine,
            graph,
            SelectionMode.SYNCHRONOUS,
            max_configurations=max_configurations,
        )
    if automaton.automaton_class.fairness is Fairness.PSEUDO_STOCHASTIC:
        return decide_pseudo_stochastic(
            automaton.machine,
            graph,
            automaton.selection,
            max_configurations=max_configurations,
        )
    return decide_adversarial(
        automaton.machine,
        graph,
        automaton.selection,
        max_configurations=max_configurations,
    )


def decides_same(
    automaton: DistributedAutomaton,
    graphs: list[LabeledGraph],
    max_configurations: int = 200_000,
) -> bool:
    """Whether the automaton gives the same (consistent) verdict on all graphs.

    The workhorse of the indistinguishability experiments: e.g. a DAf
    automaton must give the same verdict on a graph and on any covering of
    it (Lemma 3.2).
    """
    verdicts = {
        decide(automaton, graph, max_configurations=max_configurations).verdict
        for graph in graphs
    }
    return len(verdicts) == 1 and Verdict.INCONSISTENT not in verdicts
