"""Pluggable simulation backends: per-node reference and count-based engines.

The Monte-Carlo engine (:class:`repro.core.simulation.SimulationEngine`)
delegates the actual run to a :class:`SimulationBackend`.  Two backends ship
with the package:

:class:`PerNodeBackend`
    The reference implementation: configurations are tuples ``C : V → Q`` and
    every step recomputes the selected nodes' neighbourhood views from the
    adjacency structure, rebuilds the configuration tuple and rescans it for
    a consensus.  Works for every machine, graph and schedule, but each step
    costs ``O(n)`` regardless of how little changed.  Kept verbatim as the
    differential oracle the optimised engines are checked against.

:class:`CompiledPerNodeBackend`
    The optimised per-node engine: the machine is compiled to interned
    integer states with memoised transition tables
    (:class:`~repro.core.compile.CompiledMachine`), the configuration is a
    mutable int array, every node caches its neighbour-multiset count vector
    (updated incrementally when a neighbour flips) and consensus is tracked
    through per-verdict counters — one exclusive step costs ``O(deg(v))``
    instead of ``O(n)``.  It consumes ``schedule.selections(graph)`` exactly
    like the reference, so for the same seed it reproduces the reference run
    bit for bit (verdict, steps, ``stabilised_at``, final configuration) on
    every graph family and schedule it accepts; per-step trace recording and
    implicit cliques (on-demand adjacency, see
    :meth:`CompiledPerNodeBackend.supports`) are the only exclusions.
    Compiled machines are plain data and pickle cleanly, which the sweep
    executor uses to ship pre-built instances to worker processes.

:class:`CountBasedBackend`
    A vectorized engine for *cliques*, exploiting the symmetry that classical
    population protocols exploit (and that the proof of Lemma 5.1 uses to
    place DAF inside NL): on a clique every node in state ``q`` sees the same
    neighbourhood — the global state counts minus itself — so a configuration
    collapses to a count vector and a scheduler step to a weighted draw over
    *states* instead of nodes.  Cost per active step is polynomial in the
    number of *occupied* states (each of the ``k`` occupied states evaluates
    a transition on a freshly built, sorted count view: ``O(k² log k)``) and
    **independent of the population size**; transitions are memoised on the
    (β-capped) neighbourhood view, and stretches of *silent* steps are
    fast-forwarded by sampling
    their length from a geometric distribution instead of drawing them one by
    one.  The trajectory distribution over count vectors is exactly the one
    the per-node backend induces (selecting a uniformly random node selects a
    state ``q`` with probability ``count(q)/n``), so verdicts agree with the
    reference backend and with the exact decision procedure wherever those
    are defined — the differential test suite checks this on randomized
    instances.

Backends never touch the global :mod:`random` state; randomized schedules
carry their own seed or injected ``random.Random``
(:func:`repro.core.scheduler.resolve_rng`).

A third evaluation strategy — *exact* decision via the configuration graph
(:func:`repro.core.verification.decide`) — is not a backend: it quantifies
over all fair schedules instead of sampling one, and is exponential in the
number of nodes.  The scaling ladder is therefore: exact (≤ ~7 nodes),
per-node reference (~10³ nodes), compiled per-node (~10⁴–10⁵ nodes on any
graph), count-based (10⁴–10⁶ agents on cliques).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compile import compile_machine, run_compiled
from repro.core.configuration import (
    Configuration,
    configuration_from_counts,
    consensus_of_counts,
    consensus_value,
    initial_configuration,
    state_counts,
    successor,
)
from repro.core.graphs import ImplicitCliqueGraph, LabeledGraph
from repro.core.machine import DistributedMachine, Neighborhood, State
from repro.core.results import RunResult, Verdict
from repro.core.scheduler import (
    RandomExclusiveSchedule,
    ScheduleGenerator,
    SynchronousSchedule,
    geometric_silent_steps,
    resolve_rng,
    weighted_index,
)
from repro.core.streaks import ConsensusStreakDriver
from repro.obs.metrics import get_metrics


class BackendUnsupported(RuntimeError):
    """Raised when a backend is asked to run an instance it cannot handle."""


class SimulationBackend:
    """Strategy interface for running one machine/graph/schedule instance.

    ``run`` must implement the engine's stabilisation contract: execute at
    most ``max_steps`` scheduler steps, declare the run stabilised once the
    consensus value has persisted for ``stability_window`` consecutive steps
    (or the configuration has been constant that long while in consensus),
    and report the verdict of the final consensus value (``UNDECIDED`` if
    there is none).
    """

    name: str = "abstract"

    def supports(
        self,
        machine: DistributedMachine,
        graph: LabeledGraph,
        schedule: ScheduleGenerator,
        record_trace: bool = False,
    ) -> bool:
        """Whether this backend can faithfully run the given instance."""
        raise NotImplementedError

    def run(
        self,
        machine: DistributedMachine,
        graph: LabeledGraph,
        schedule: ScheduleGenerator,
        *,
        max_steps: int,
        stability_window: int,
        record_trace: bool = False,
        start: Configuration | None = None,
    ) -> RunResult:
        raise NotImplementedError


# ---------------------------------------------------------------------- #
# Per-node reference backend
# ---------------------------------------------------------------------- #
@dataclass
class PerNodeBackend(SimulationBackend):
    """The reference backend: one neighbourhood evaluation per selected node."""

    name = "per-node"

    def supports(
        self,
        machine: DistributedMachine,
        graph: LabeledGraph,
        schedule: ScheduleGenerator,
        record_trace: bool = False,
    ) -> bool:
        return True

    def run(
        self,
        machine: DistributedMachine,
        graph: LabeledGraph,
        schedule: ScheduleGenerator,
        *,
        max_steps: int,
        stability_window: int,
        record_trace: bool = False,
        start: Configuration | None = None,
    ) -> RunResult:
        configuration = (
            start if start is not None else initial_configuration(machine, graph)
        )
        trace: list[Configuration] | None = [configuration] if record_trace else None
        consensus_streak = 0
        quiet_streak = 0
        last_consensus = consensus_value(machine, configuration)
        stabilised_at: int | None = None
        step = 0
        for selection in schedule.selections(graph):
            if step >= max_steps:
                break
            step += 1
            next_configuration = successor(machine, graph, configuration, selection)
            if trace is not None:
                trace.append(next_configuration)
            if next_configuration == configuration:
                quiet_streak += 1
            else:
                quiet_streak = 0
            configuration = next_configuration
            current = consensus_value(machine, configuration)
            if current is not None and current == last_consensus:
                consensus_streak += 1
            else:
                consensus_streak = 0
            last_consensus = current
            if consensus_streak >= stability_window:
                stabilised_at = step
                break
            if quiet_streak >= stability_window and current is not None:
                stabilised_at = step
                break
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("engine.runs", engine="per-node").inc()
            metrics.counter("engine.steps", engine="per-node").inc(step)
        final_value = consensus_value(machine, configuration)
        return _result(final_value, step, configuration, stabilised_at, trace)


# ---------------------------------------------------------------------- #
# Compiled per-node backend (any graph, any schedule, no traces)
# ---------------------------------------------------------------------- #
@dataclass
class CompiledPerNodeBackend(PerNodeBackend):
    """Per-node simulation over compiled transition kernels; O(deg) per step.

    Subclasses :class:`PerNodeBackend` because it implements the same
    semantics on the same instances — for a given seed the two produce
    identical :class:`~repro.core.results.RunResult`\\ s — just with the hot
    loop rewritten around :class:`~repro.core.compile.CompiledMachine` and
    incremental neighbourhood/consensus bookkeeping (see
    :mod:`repro.core.compile`).  Trace recording is the one capability it
    gives up: materialising a full configuration per step would reintroduce
    the O(n) cost the engine exists to avoid, so ``"auto"`` falls back to the
    reference loop when a trace is requested.
    """

    name = "compiled"

    def supports(
        self,
        machine: DistributedMachine,
        graph: LabeledGraph,
        schedule: ScheduleGenerator,
        record_trace: bool = False,
    ) -> bool:
        # Unlike the count backend there is no schedule eligibility rule:
        # the engine consumes schedule.selections() verbatim, so subclassed
        # schedules keep their custom dynamics.  Implicit cliques are the
        # one graph exclusion: their adjacency is generated on demand, and
        # this engine's per-node neighbour vectors would materialise all
        # n(n-1)/2 edges — at the 10⁴–10⁶ scales those graphs exist for
        # that is an O(n²) blow-up, so such instances stay on the count
        # backend (supported schedules) or the streaming reference loop.
        return not record_trace and not isinstance(graph, ImplicitCliqueGraph)

    def run(
        self,
        machine: DistributedMachine,
        graph: LabeledGraph,
        schedule: ScheduleGenerator,
        *,
        max_steps: int,
        stability_window: int,
        record_trace: bool = False,
        start: Configuration | None = None,
    ) -> RunResult:
        if not self.supports(machine, graph, schedule, record_trace):
            raise BackendUnsupported(
                f"the compiled per-node backend records no traces and needs "
                f"materialised adjacency (graph={graph.name!r}, "
                f"record_trace={record_trace}); use the 'per-node' reference "
                f"backend"
            )
        compiled = compile_machine(machine)
        return run_compiled(
            compiled,
            graph,
            schedule,
            max_steps=max_steps,
            stability_window=stability_window,
            start=start,
        )


# ---------------------------------------------------------------------- #
# Count-based backend (cliques)
# ---------------------------------------------------------------------- #
@dataclass
class CountBasedBackend(SimulationBackend):
    """Count-vector simulation of cliques; per-step cost independent of population size.

    Supported instances: the graph is a clique and the schedule is a
    :class:`RandomExclusiveSchedule` or :class:`SynchronousSchedule` (the two
    schedules whose count-level dynamics are well defined without node
    identities).  Trace recording is unsupported — node identities are not
    tracked, so a per-node trace cannot be reconstructed; the engine falls
    back to the per-node backend when a trace is requested.
    """

    name = "count"

    def supports(
        self,
        machine: DistributedMachine,
        graph: LabeledGraph,
        schedule: ScheduleGenerator,
        record_trace: bool = False,
    ) -> bool:
        # Exact-type check, not isinstance: the count engine never consults
        # schedule.selections() (it resamples the same law at the count
        # level), so a subclass overriding selections() must fall back to
        # the per-node backend to keep its custom dynamics.
        return (
            not record_trace
            and graph.is_clique()
            and type(schedule) in (RandomExclusiveSchedule, SynchronousSchedule)
        )

    def run(
        self,
        machine: DistributedMachine,
        graph: LabeledGraph,
        schedule: ScheduleGenerator,
        *,
        max_steps: int,
        stability_window: int,
        record_trace: bool = False,
        start: Configuration | None = None,
    ) -> RunResult:
        if not self.supports(machine, graph, schedule, record_trace):
            raise BackendUnsupported(
                f"count-based backend needs a clique and a random-exclusive or "
                f"synchronous schedule without trace recording "
                f"(graph={graph.name!r}, schedule={type(schedule).__name__}, "
                f"record_trace={record_trace})"
            )
        if start is not None:
            counts = state_counts(start)
        else:
            counts = state_counts(
                machine.initial_state(graph.label_of(v)) for v in graph.nodes()
            )
        runner = _CountRun(machine, graph.num_nodes, counts)
        if isinstance(schedule, SynchronousSchedule):
            return runner.run_synchronous(max_steps, stability_window)
        rng = resolve_rng(schedule.rng, schedule.seed)
        return runner.run_exclusive(rng, max_steps, stability_window)


_MISS = object()  # cache-miss sentinel: None is a legitimate cached state


class _CountRun:
    """One count-vector run: memoised transitions on top of the shared
    :class:`~repro.core.streaks.ConsensusStreakDriver` bookkeeping."""

    def __init__(self, machine: DistributedMachine, n: int, counts: dict[State, int]):
        self.machine = machine
        self.n = n
        self.counts = {s: c for s, c in counts.items() if c > 0}
        # Memoising on the β-capped view only pays off when the cap actually
        # binds: with β ≥ n-1 every distinct count vector yields a distinct
        # key, so the cache would grow with the trajectory and never hit.
        self._memoise = machine.beta < n - 1
        self._delta_cache: dict[tuple[State, Neighborhood], State] = {}
        # Telemetry accumulators: plain ints on the hot path, flushed once
        # into the metrics registry by _finish (only when metrics are on).
        self._hits = 0
        self._misses = 0
        self._silent_skipped = 0

    def _consensus(self) -> bool | None:
        return consensus_of_counts(self.machine, self.counts)

    # -- transition evaluation ------------------------------------------ #
    def _next_state(self, state: State) -> State:
        """δ applied to a node in ``state``; memoised on the capped view."""
        neighbour_counts = dict(self.counts)
        neighbour_counts[state] -= 1
        view = Neighborhood(neighbour_counts, self.machine.beta, total=self.n - 1)
        if not self._memoise:
            return self.machine.step(state, view)
        key = (state, view)
        cached = self._delta_cache.get(key, _MISS)
        if cached is _MISS:
            self._misses += 1
            cached = self.machine.step(state, view)
            self._delta_cache[key] = cached
        else:
            self._hits += 1
        return cached

    def _movers(self) -> list[tuple[State, State, int]]:
        """States whose nodes would change state, with their counts.

        Sorted by ``repr`` so the weighted draw consumes randomness in a
        deterministic order regardless of dict insertion history.
        """
        movers = []
        for state in sorted(self.counts, key=repr):
            nxt = self._next_state(state)
            if nxt != state:
                movers.append((state, nxt, self.counts[state]))
        return movers

    # -- drivers --------------------------------------------------------- #
    def run_exclusive(self, rng, max_steps: int, window: int) -> RunResult:
        """Uniform random exclusive scheduling, sampled at the count level."""
        driver = ConsensusStreakDriver(window, max_steps, self._consensus())
        n = self.n
        while driver.step < max_steps:
            movers = self._movers()
            active_mass = sum(count for _, _, count in movers)
            if active_mass == 0:
                # Fixed point: every remaining step is silent.
                driver.finish_at_fixed_point(self._consensus())
                break
            silent = geometric_silent_steps(rng, active_mass / n)
            if silent:
                self._silent_skipped += silent
                if driver.advance_silent(silent, self._consensus()):
                    break
            # The active step: pick a mover state weighted by its count.
            state, nxt, _ = movers[
                weighted_index(rng, [count for _, _, count in movers], active_mass)
            ]
            self.counts[state] -= 1
            if self.counts[state] == 0:
                del self.counts[state]
            self.counts[nxt] = self.counts.get(nxt, 0) + 1
            if driver.record_active(self._consensus()):
                break
        return self._finish(driver)

    def run_synchronous(self, max_steps: int, window: int) -> RunResult:
        """The unique synchronous run, advanced as pure count arithmetic."""
        driver = ConsensusStreakDriver(window, max_steps, self._consensus())
        while driver.step < max_steps:
            new_counts: dict[State, int] = {}
            for state in sorted(self.counts, key=repr):
                nxt = self._next_state(state)
                new_counts[nxt] = new_counts.get(nxt, 0) + self.counts[state]
            if new_counts == self.counts:
                # Count-level fixed point: views never change again, so the
                # per-state transition map (and hence the counts and the
                # consensus value) is constant for the rest of the run.
                driver.finish_at_fixed_point(self._consensus())
                break
            self.counts = new_counts
            if driver.record_active(self._consensus()):
                break
        return self._finish(driver)

    def _finish(self, driver: ConsensusStreakDriver) -> RunResult:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("engine.runs", engine="count").inc()
            metrics.counter("engine.steps", engine="count").inc(driver.step)
            if self._silent_skipped:
                metrics.counter(
                    "engine.silent_steps_skipped", engine="count"
                ).inc(self._silent_skipped)
            if self._hits:
                metrics.counter("memo.hits", table="count-delta").inc(self._hits)
            if self._misses:
                metrics.counter("memo.misses", table="count-delta").inc(self._misses)
        final_value = self._consensus()
        configuration = configuration_from_counts(self.counts)
        return _result(
            final_value, driver.step, configuration, driver.stabilised_at, None
        )


# ---------------------------------------------------------------------- #
# Shared verdict assembly and backend resolution
# ---------------------------------------------------------------------- #
def _result(
    final_value: bool | None,
    step: int,
    configuration: Configuration,
    stabilised_at: int | None,
    trace: list[Configuration] | None,
) -> RunResult:
    if final_value is not None:
        # Stabilised, or ran out of steps while in a consensus: report the
        # consensus value (the latter flagged by ``stabilised_at is None``).
        verdict = Verdict.ACCEPT if final_value else Verdict.REJECT
    else:
        verdict = Verdict.UNDECIDED
    return RunResult(
        verdict=verdict,
        steps=step,
        final_configuration=configuration,
        stabilised_at=stabilised_at,
        trace=trace,
    )


PER_NODE_BACKEND = PerNodeBackend()
COMPILED_BACKEND = CompiledPerNodeBackend()
COUNT_BACKEND = CountBasedBackend()

_BACKENDS_BY_NAME: dict[str, SimulationBackend] = {
    PER_NODE_BACKEND.name: PER_NODE_BACKEND,
    COMPILED_BACKEND.name: COMPILED_BACKEND,
    COUNT_BACKEND.name: COUNT_BACKEND,
}


def resolve_backend(
    spec: str | SimulationBackend,
    machine: DistributedMachine,
    graph: LabeledGraph,
    schedule: ScheduleGenerator,
    record_trace: bool = False,
) -> SimulationBackend:
    """Resolve a backend spec (``"auto"``, a name, or an instance) for an instance.

    ``"auto"`` walks the preference ladder: the count-based backend whenever
    it supports the instance (cliques under the exact random-exclusive /
    synchronous schedule types), else the compiled per-node engine (any
    graph and schedule without trace recording), else the per-node
    reference.  Naming a backend that cannot handle the instance raises
    :class:`BackendUnsupported` rather than silently falling back.
    """
    if isinstance(spec, SimulationBackend):
        backend = spec
    elif spec == "auto":
        if COUNT_BACKEND.supports(machine, graph, schedule, record_trace):
            return COUNT_BACKEND
        if COMPILED_BACKEND.supports(machine, graph, schedule, record_trace):
            return COMPILED_BACKEND
        return PER_NODE_BACKEND
    else:
        try:
            backend = _BACKENDS_BY_NAME[spec]
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r}; expected 'auto', one of "
                f"{sorted(_BACKENDS_BY_NAME)}, or a SimulationBackend instance"
            ) from None
    if not backend.supports(machine, graph, schedule, record_trace):
        raise BackendUnsupported(
            f"backend {backend.name!r} does not support this instance "
            f"(graph={graph.name!r}, schedule={type(schedule).__name__}, "
            f"record_trace={record_trace})"
        )
    return backend
