"""The vectorized multi-seed batch engine: all runs of a batch in lockstep.

``Workload.run_many`` historically executed its ``B`` Monte-Carlo runs one at
a time through a Python loop, so sweep throughput scaled linearly with the
run count even on the count backend, where every run is just arithmetic on a
small count vector.  This module runs all ``B`` seeds of a count-eligible
batch *in lockstep*:

* the per-run configurations live in one ``(B, |states|)`` numpy count
  matrix, updated with batched column operations (``np.add.at`` /
  ``np.subtract.at`` over the rows that took an active step this iteration);
* consensus streaks are tracked by
  :class:`~repro.core.streaks.ArrayStreakDriver` — the scalar
  :class:`~repro.core.streaks.ConsensusStreakDriver` lifted into array form;
* finished rows (stabilised, fixed point, or step budget spent) are retired
  from the active mask, so early-finishing rows stop consuming work;
* the per-step transition work (mover enumeration, δ evaluation, consensus
  of the count vector) is memoised in a *successor graph* shared by every
  row: each distinct count vector is analysed exactly once per batch, and
  rows walk the graph by reference.  Monte-Carlo trajectories of one
  instance revisit the same count vectors constantly, so this is where the
  batch beats ``B`` independent runs.

**Bit-identity guarantee.**  The vectorized engine produces *byte-identical*
:class:`~repro.core.batch.BatchResult`\\ s to the sequential per-run loop
(:meth:`~repro.workloads.base.Workload.run_many_sequential`, kept verbatim
as the differential oracle).  Two contracts make this possible:

1. **Seed derivation** — row ``j`` draws from its own private
   ``random.Random(derive_seed(base_seed, j))``, exactly the generator the
   sequential loop hands to run ``j``.  Batched draws *gather from the
   per-row generators*; there is no shared batch-level stream, because any
   shared stream would entangle the rows and break single-run
   reproducibility.
2. **Draw-for-draw replay** — per row, the engine consumes uniforms in
   exactly the sequential order (one geometric silent-stretch draw when the
   activity probability is below one, then one weighted mover draw per
   active step) and evaluates the *same* float expressions
   (``log1p(-u) / log1p(-p)`` with the denominator computed once per count
   vector, integer cumulative-weight scan), so every intermediate value is
   identical — not merely statistically equivalent.

Eligibility mirrors ``resolve_backend``'s auto ladder one level up:
:func:`resolve_batch_backend` returns this count-vector backend for
workloads whose per-run engine is count-level (clique machine instances
under the random-exclusive schedule, population protocols under the counts
method), the per-node lockstep backend of
:mod:`repro.core.vector_pernode` for workloads whose per-run engine is the
compiled per-node one (non-clique machine instances, shipped compiled
workloads), and ``None`` otherwise, in which case ``run_many`` falls back
to the per-run loop.  Quorum batches abandon the rows the sequential loop
would have skipped: the quorum rule is an ordered fold (run ``j`` is only
consulted once runs ``0..j-1`` have outcomes) whose stopping condition is
monotone in the decided-verdict counts, so :func:`quorum_abandon_bound`
derives, from the rows finished *so far*, the tightest position the fold
can possibly stop at — and every row at or past that bound is dropped
mid-flight the moment the bound becomes provable, not only once the
finished prefix catches up.

``EngineOptions.memo_cap`` bounds the per-batch caches the same way it
bounds the compiled machine's memo table: once the successor-graph node
cache (and, for machines, the δ view cache) holds ``memo_cap`` entries,
further count vectors are analysed on every visit instead of being stored.
Node analysis draws no randomness, so the cap never affects results — it
trades the memoisation speedup for bounded memory on long-wandering
batches, whose distinct-count-vector space grows with ``B × steps``.
"""

from __future__ import annotations

import math
import random

from repro.core.backends import COUNT_BACKEND
from repro.core.batch import BatchResult, collect_batch, derive_seed, quorum_target
from repro.core.configuration import configuration_from_counts, consensus_of_counts
from repro.core.machine import Neighborhood
from repro.core.results import RunResult, Verdict
from repro.core.scheduler import RandomExclusiveSchedule
from repro.core.streaks import ArrayStreakDriver
from repro.obs.metrics import get_metrics
from repro.obs.tracing import trace_event

try:  # numpy carries the count matrix; without it batches fall back to the loop
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

_log1p = math.log1p
_MISS = object()  # cache-miss sentinel (None can be a legitimate cached value)

#: Consensus codes used by the array driver (``value`` column semantics).
_NONE = ArrayStreakDriver.NO_CONSENSUS  # -1: no consensus
_FALSE = 0
_TRUE = 1

_PROBE_SCHEDULE = RandomExclusiveSchedule(seed=0)


def _code(value) -> int:
    """Encode a consensus value (``bool | None``) as an int8 driver code."""
    if value is None:
        return _NONE
    return _TRUE if value else _FALSE


def quorum_abandon_bound(results: list, early_stop: tuple) -> int | None:
    """The tightest provable bound on how many rows ``collect_batch`` consumes.

    ``results`` is the in-flight per-row result list (``None`` = still
    running or abandoned) and ``early_stop`` the quorum contract
    ``(target, min_runs, runs)`` from
    :func:`~repro.core.batch.quorum_target`.  Rows are scanned in fold
    order, counting decided verdicts among the rows that have *already
    finished*, and the exact ``collect_batch`` stopping condition is applied
    after each position.  The condition is monotone in the decided counts —
    a still-running row can only add to them once it finishes — so if it
    already holds at position ``i`` over the finished subset, the sequential
    fold is guaranteed to stop after consuming at most ``i + 1`` rows.
    Rows at index ``>= i + 1`` can therefore never be consulted and may be
    abandoned immediately, even while earlier rows are still mid-flight.
    Returns that bound, or ``None`` while no stop can be proven yet.

    This strictly subsumes the earlier finished-*prefix* rule (a complete
    satisfying prefix is just the special case where every scanned row has
    finished), which let rows beyond the eventual stop position burn
    lockstep work until the prefix caught up.
    """
    target, min_runs, runs = early_stop
    accepts = rejects = 0
    for consumed, result in enumerate(results, start=1):
        if result is not None:
            verdict = result.verdict
            if verdict is Verdict.ACCEPT:
                accepts += 1
            elif verdict is Verdict.REJECT:
                rejects += 1
        if (
            consumed >= min_runs
            and consumed < runs
            and (accepts >= target or rejects >= target)
        ):
            return consumed
    return None


class _Node:
    """One distinct count vector of the batch, analysed exactly once.

    Holds the mover table (enumeration order identical to the sequential
    engine's), the precomputed geometric denominator ``log1p(-p)`` and the
    cumulative integer weights for the mover draw, plus lazily-built
    references to the successor node of each mover.  ``sub``/``add`` are the
    interned column indices the count matrix must decrement/increment when a
    row takes the corresponding mover.
    """

    __slots__ = (
        "counts",
        "consensus_code",
        "mass",
        "log_denom",
        "cum",
        "sub",
        "add",
        "movers",
        "successors",
    )

    def __init__(self, counts, consensus_code, mass, log_denom, cum, sub, add, movers):
        self.counts = counts
        self.consensus_code = consensus_code
        self.mass = mass
        self.log_denom = log_denom  # None when the activity probability is >= 1
        self.cum = cum
        self.sub = sub
        self.add = add
        self.movers = movers
        self.successors: list = [None] * len(cum)

    def pick(self, point: float) -> int:
        """The mover index of a weighted draw — the cumulative scan of
        :func:`~repro.core.scheduler.weighted_index`, over precomputed
        integer cumulative weights (bit-identical comparisons)."""
        for index, cumulative in enumerate(self.cum):
            if point < cumulative:
                return index
        return len(self.cum) - 1


class _LockstepRun:
    """Shared lockstep driver: count matrix, array streaks, active mask.

    Subclasses provide the dynamics — :meth:`_build_node` (mover enumeration
    and δ evaluation for one count vector) and :meth:`_apply` (the count
    deltas of one mover) — and the finish semantics of their sequential
    engine (:meth:`_retire`, :meth:`_finish_fixed`).

    ``memo_cap`` (``EngineOptions.memo_cap``) bounds the successor-graph
    node cache: beyond the cap, count vectors are re-analysed per visit and
    no successor links are recorded to them (an uncached node pinned by a
    link would defeat the cap).  Node analysis is deterministic and draws no
    randomness, so the cap is invisible in the results.
    """

    #: Engine label used for the registry flush (``engine.runs{engine=...}``).
    engine = "vector-batch"

    def __init__(self, window: int, max_steps: int, memo_cap: int | None = None):
        self.window = window
        self.max_steps = max_steps
        self.memo_cap = memo_cap
        self._states: list = []  # interned states, index = matrix column
        self._index: dict = {}
        self._nodes: dict = {}
        self._node_cached = True  # whether the last _node_for hit/stored the cache
        # Telemetry accumulators: plain ints on the hot path, flushed once
        # into the metrics registry at the end of run() (only when enabled).
        self._node_hits = 0
        self._node_misses = 0
        self._node_evictions = 0
        self._delta_hits = 0
        self._delta_misses = 0
        self._delta_evictions = 0

    # -- state interning ------------------------------------------------- #
    def _intern(self, state) -> int:
        column = self._index.get(state)
        if column is None:
            column = len(self._states)
            self._index[state] = column
            self._states.append(state)
        return column

    def _node_for(self, counts: dict) -> _Node:
        """The (shared, memoised) node of a count vector."""
        key = tuple(sorted((self._intern(s), c) for s, c in counts.items()))
        node = self._nodes.get(key)
        if node is not None:
            self._node_cached = True
            self._node_hits += 1
            return node
        self._node_misses += 1
        node = self._build_node(counts)
        if self.memo_cap is None or len(self._nodes) < self.memo_cap:
            self._nodes[key] = node
            self._node_cached = True
        else:
            self._node_cached = False
            self._node_evictions += 1
        return node

    def _successor(self, node: _Node, index: int) -> _Node:
        succ = node.successors[index]
        if succ is None:
            succ = self._node_for(self._apply(node, index))
            if self._node_cached:
                node.successors[index] = succ
        return succ

    # -- hooks ----------------------------------------------------------- #
    def _build_node(self, counts: dict) -> _Node:
        raise NotImplementedError

    def _apply(self, node: _Node, index: int) -> dict:
        raise NotImplementedError

    def _retire(self, row: int, node: _Node) -> RunResult:
        raise NotImplementedError

    def _finish_fixed(self, rows: list, nodes: list) -> None:
        raise NotImplementedError

    # -- the lockstep loop ----------------------------------------------- #
    def run(
        self,
        rngs: list,
        early_stop: tuple | None = None,
        materialise_configurations: bool = True,
    ) -> list[RunResult]:
        """Advance every row to completion; one ``RunResult`` per generator.

        ``early_stop`` is the quorum contract ``(target, min_runs, runs)``
        from :func:`~repro.core.batch.quorum_target`: after any lockstep
        iteration that retires a row, :func:`quorum_abandon_bound` derives
        the tightest row count the ``collect_batch`` fold can possibly
        consume, and every row at or past that bound is abandoned
        immediately — its slot stays ``None`` — while earlier rows keep
        running to completion.  ``collect_batch`` drains the returned list
        in row order and stops at or before the bound, so it never reaches
        an abandoned slot.

        ``materialise_configurations=False`` retires machine rows with an
        empty ``final_configuration`` instead of an O(n) state tuple — all
        ``B`` results stay resident until the caller folds them, so a
        caller that is about to drop the per-run results (``run_many`` with
        ``keep_results=False``, the executor's record path) opts out of
        holding O(B·n) states alive for nothing.
        """
        np = _np
        batch = len(rngs)
        self.materialise_configurations = materialise_configurations
        rands = [rng.random for rng in rngs]
        initial = self._node_for(self._initial_counts())
        self.row_node: list[_Node] = [initial] * batch
        self.driver = ArrayStreakDriver(
            self.window, self.max_steps, [initial.consensus_code] * batch
        )
        self.results: list[RunResult | None] = [None] * batch
        width = len(self._states)
        matrix = np.zeros((batch, width), dtype=np.int64)
        for state, count in initial.counts.items():
            matrix[:, self._index[state]] = count
        self.matrix = matrix
        alive = list(range(batch))
        driver = self.driver
        row_node = self.row_node
        # Retirement-reason tally (plain ints; flushed once when metrics on).
        track = get_metrics().enabled
        stabilised_rows = fixed_rows_total = exhausted_rows = silent_total = 0
        while alive:
            retired = False
            fixed_rows: list[int] = []
            live_rows: list[int] = []
            silent_values: list[int] = []
            live_codes: list[int] = []
            for j in alive:
                node = row_node[j]
                if node.mass == 0:
                    fixed_rows.append(j)
                    continue
                if node.log_denom is None:  # activity probability >= 1: no draw
                    silent = 0
                else:
                    silent = int(_log1p(-rands[j]()) / node.log_denom)
                live_rows.append(j)
                silent_values.append(silent)
                live_codes.append(node.consensus_code)
            if track and silent_values:
                silent_total += sum(silent_values)
            if fixed_rows:
                self._finish_fixed(fixed_rows, [row_node[j] for j in fixed_rows])
                fixed_rows_total += len(fixed_rows)
                retired = True
            survivors: list[int] = []
            if live_rows:
                rows = np.array(live_rows, dtype=np.intp)
                silent_arr = np.array(silent_values, dtype=np.int64)
                has_silent = silent_arr > 0
                if has_silent.any():
                    stretch_rows = rows[has_silent]
                    finished = driver.advance_silent(
                        stretch_rows,
                        silent_arr[has_silent],
                        np.array(live_codes, dtype=np.int8)[has_silent],
                    )
                    for j in stretch_rows[finished]:
                        self.results[j] = self._retire(int(j), row_node[j])
                        stabilised_rows += 1
                        retired = True
                    survivors = rows[~has_silent].tolist()
                    survivors.extend(int(j) for j in stretch_rows[~finished])
                else:
                    survivors = live_rows
            if not survivors:
                alive = []
                continue
            sub_rows: list[int] = []
            sub_cols: list[int] = []
            add_rows: list[int] = []
            add_cols: list[int] = []
            new_codes: list[int] = []
            for j in survivors:
                node = row_node[j]
                index = node.pick(rands[j]() * node.mass)
                succ = self._successor(node, index)
                row_node[j] = succ
                for column in node.sub[index]:
                    sub_rows.append(j)
                    sub_cols.append(column)
                for column in node.add[index]:
                    add_rows.append(j)
                    add_cols.append(column)
                new_codes.append(succ.consensus_code)
            if len(self._states) > self.matrix.shape[1]:  # new states interned
                grown = np.zeros((batch, len(self._states)), dtype=np.int64)
                grown[:, : self.matrix.shape[1]] = self.matrix
                self.matrix = grown
            np.subtract.at(self.matrix, (sub_rows, sub_cols), 1)
            np.add.at(self.matrix, (add_rows, add_cols), 1)
            active_rows = np.array(survivors, dtype=np.intp)
            finished = driver.record_active(
                active_rows, np.array(new_codes, dtype=np.int8)
            )
            for j in active_rows[finished]:
                self.results[j] = self._retire(int(j), row_node[j])
                stabilised_rows += 1
                retired = True
            remaining = active_rows[~finished]
            exhausted = driver.exhausted(remaining)
            for j in remaining[exhausted]:
                self.results[j] = self._retire(int(j), row_node[j])
                exhausted_rows += 1
                retired = True
            alive = remaining[~exhausted].tolist()
            if retired and early_stop is not None and alive:
                bound = quorum_abandon_bound(self.results, early_stop)
                if bound is not None:
                    alive = [j for j in alive if j < bound]
        metrics = get_metrics()
        if metrics.enabled:
            abandoned = sum(1 for result in self.results if result is None)
            metrics.counter("engine.runs", engine=self.engine).inc(batch - abandoned)
            metrics.counter("engine.steps", engine=self.engine).inc(
                int(driver.step.sum())
            )
            if silent_total:
                metrics.counter(
                    "engine.silent_steps_skipped", engine=self.engine
                ).inc(silent_total)
            for reason, count in (
                ("stabilised", stabilised_rows),
                ("fixed-point", fixed_rows_total),
                ("exhausted", exhausted_rows),
                ("quorum-abandoned", abandoned),
            ):
                if count:
                    metrics.counter("batch.rows_retired", reason=reason).inc(count)
            for table, hits, misses, evictions in (
                ("batch-node", self._node_hits, self._node_misses, self._node_evictions),
                ("batch-delta", self._delta_hits, self._delta_misses, self._delta_evictions),
            ):
                if hits:
                    metrics.counter("memo.hits", table=table).inc(hits)
                if misses:
                    metrics.counter("memo.misses", table=table).inc(misses)
                if evictions:
                    metrics.counter("memo.evictions", table=table).inc(evictions)
        return self.results  # type: ignore[return-value]

    def _initial_counts(self) -> dict:
        raise NotImplementedError

    def _matrix_counts(self, row: int) -> dict:
        """The count dict of a matrix row — the retirement read-back path."""
        return {
            self._states[column]: int(count)
            for column, count in enumerate(self.matrix[row])
            if count
        }


class _MachineLockstep(_LockstepRun):
    """Lockstep count-vector runs of a machine on a clique.

    The dynamics mirror ``repro.core.backends._CountRun.run_exclusive``
    state-for-state: movers enumerated over the occupied states in sorted
    ``repr`` order, each evaluated on the β-capped neighbourhood view (the
    global counts minus the node itself), silent stretches absorbed
    geometrically with activity probability ``active_mass / n``.
    """

    def __init__(
        self,
        machine,
        n: int,
        counts: dict,
        max_steps: int,
        window: int,
        memo_cap: int | None = None,
    ):
        super().__init__(window, max_steps, memo_cap)
        self.machine = machine
        self.n = n
        self._initial = {s: c for s, c in counts.items() if c > 0}
        # δ memoised on the β-capped view, like _CountRun (but shared across
        # all rows and count vectors of the batch) — and gated off the same
        # way: with β ≥ n-1 views track count vectors one-to-one, the node
        # cache already dedupes per vector, so every entry would be written
        # once and never read (pure memory growth, mirrors backends.py).
        self._memoise_delta = machine.beta < n - 1
        self._delta_cache: dict = {}

    def _initial_counts(self) -> dict:
        return self._initial

    def _build_node(self, counts: dict) -> _Node:
        machine = self.machine
        delta_cache = self._delta_cache
        memo_cap = self.memo_cap
        cum: list[int] = []
        sub: list[tuple[int, ...]] = []
        add: list[tuple[int, ...]] = []
        movers: list[tuple] = []
        mass = 0
        for state in sorted(counts, key=repr):
            neighbour_counts = dict(counts)
            neighbour_counts[state] -= 1
            view = Neighborhood(neighbour_counts, machine.beta, total=self.n - 1)
            if self._memoise_delta:
                key = (state, view)
                nxt = delta_cache.get(key, _MISS)
                if nxt is _MISS:
                    self._delta_misses += 1
                    nxt = machine.step(state, view)
                    if memo_cap is None or len(delta_cache) < memo_cap:
                        delta_cache[key] = nxt
                    else:
                        self._delta_evictions += 1
                else:
                    self._delta_hits += 1
            else:
                nxt = machine.step(state, view)
            if nxt != state:
                mass += counts[state]
                cum.append(mass)
                sub.append((self._intern(state),))
                add.append((self._intern(nxt),))
                movers.append((state, nxt))
        log_denom = _log1p(-(mass / self.n)) if 0 < mass < self.n else None
        return _Node(
            counts, _code(consensus_of_counts(machine, counts)), mass, log_denom,
            cum, sub, add, movers,
        )

    def _apply(self, node: _Node, index: int):
        state, nxt = node.movers[index]
        counts = dict(node.counts)
        counts[state] -= 1
        if counts[state] == 0:
            del counts[state]
        counts[nxt] = counts.get(nxt, 0) + 1
        return counts

    def _finish_fixed(self, rows: list, nodes: list) -> None:
        self.driver.finish_at_fixed_point(
            rows, [node.consensus_code for node in nodes]
        )
        for j, node in zip(rows, nodes):
            self.results[j] = self._retire(j, node)

    def _retire(self, row: int, node: _Node) -> RunResult:
        code = node.consensus_code
        if code == _NONE:
            verdict = Verdict.UNDECIDED
        else:
            verdict = Verdict.ACCEPT if code == _TRUE else Verdict.REJECT
        stabilised = int(self.driver.stabilised_at[row])
        return RunResult(
            verdict=verdict,
            steps=int(self.driver.step[row]),
            final_configuration=(
                configuration_from_counts(self._matrix_counts(row))
                if self.materialise_configurations
                else ()
            ),
            stabilised_at=None if stabilised < 0 else stabilised,
            trace=None,
        )


class _PopulationLockstep(_LockstepRun):
    """Lockstep count-vector runs of a population protocol (pair interactions).

    Mirrors ``PopulationProtocol._simulate_counts``: movers are the active
    ordered state pairs (weights ``c_p · (c_q - [p = q])``), the stabilisation
    window is ``10·n``, δ outcomes are cached per ordered pair, and the
    fixed-point-without-consensus case reports ``UNDECIDED`` at the *full*
    step budget, exactly as the scalar engine does.
    """

    def __init__(
        self, protocol, counts: dict, max_steps: int, memo_cap: int | None = None
    ):
        n = sum(counts.values())
        super().__init__(10 * n, max_steps, memo_cap)
        self.protocol = protocol
        self.n = n
        self.total_pairs = n * (n - 1)
        self._initial = {s: c for s, c in counts.items() if c > 0}
        self._delta_cache: dict = {}
        self._pair_tables: dict = {}
        self._forced_undecided: set[int] = set()

    def _initial_counts(self) -> dict:
        return self._initial

    def _pair_table(self, states: tuple) -> list:
        """The active ordered pairs of an occupied-state *set*, precomputed.

        Which ordered pairs are non-silent (``δ(p, q) ≠ (p, q)``) depends
        only on the occupied states, not on their counts, and the number of
        distinct occupied sets is tiny compared to the number of distinct
        count vectors — so the δ evaluations, interning and pair ordering
        are factored out here and :meth:`_build_node` only computes weights.
        The enumeration order (sorted states, nested p/q loops) is the
        sequential engine's, so the mover order — and hence the weighted
        draw — is identical.
        """
        table = self._pair_tables.get(states)
        if table is None:
            protocol = self.protocol
            delta_cache = self._delta_cache
            table = []
            for p in states:
                for q in states:
                    key = (p, q)
                    outcome = delta_cache.get(key)
                    if outcome is None:
                        outcome = protocol.delta(p, q)
                        delta_cache[key] = outcome
                    if outcome != key:
                        p2, q2 = outcome
                        table.append(
                            (
                                p,
                                q,
                                p is q or p == q,
                                (self._intern(p), self._intern(q)),
                                (self._intern(p2), self._intern(q2)),
                                (p, q, p2, q2),
                            )
                        )
            self._pair_tables[states] = table
        return table

    def _build_node(self, counts: dict) -> _Node:
        cum: list[int] = []
        sub: list[tuple[int, ...]] = []
        add: list[tuple[int, ...]] = []
        movers: list[tuple] = []
        mass = 0
        states = tuple(sorted(counts, key=repr))
        for p, q, same, sub_cols, add_cols, mover in self._pair_table(states):
            weight = counts[p] * (counts[q] - (1 if same else 0))
            if weight <= 0:
                continue
            mass += weight
            cum.append(mass)
            sub.append(sub_cols)
            add.append(add_cols)
            movers.append(mover)
        log_denom = (
            _log1p(-(mass / self.total_pairs))
            if 0 < mass < self.total_pairs
            else None
        )
        value = consensus_of_counts(self.protocol, counts)
        return _Node(counts, _code(value), mass, log_denom, cum, sub, add, movers)

    def _apply(self, node: _Node, index: int):
        p, q, p2, q2 = node.movers[index]
        counts = dict(node.counts)
        counts[p] -= 1
        if counts[p] == 0:
            del counts[p]
        counts[q] = counts.get(q, 0) - 1
        if counts[q] == 0:
            del counts[q]
        counts[p2] = counts.get(p2, 0) + 1
        counts[q2] = counts.get(q2, 0) + 1
        return counts

    def _finish_fixed(self, rows: list, nodes: list) -> None:
        decided_rows = [
            j for j, node in zip(rows, nodes) if node.consensus_code != _NONE
        ]
        if decided_rows:
            self.driver.finish_at_fixed_point(
                decided_rows,
                [self.row_node[j].consensus_code for j in decided_rows],
            )
        for j, node in zip(rows, nodes):
            if node.consensus_code == _NONE:
                # The scalar engine returns (UNDECIDED, max_steps) here —
                # the verdict is decided now or never, and the full budget
                # is reported regardless of the steps actually taken.
                self._forced_undecided.add(j)
            self.results[j] = self._retire(j, node)

    def _retire(self, row: int, node: _Node) -> RunResult:
        if row in self._forced_undecided:
            return RunResult(
                verdict=Verdict.UNDECIDED,
                steps=self.max_steps,
                final_configuration=(),
            )
        code = int(self.driver.value[row])
        if code == _NONE:
            verdict = Verdict.UNDECIDED
        else:
            verdict = Verdict.ACCEPT if code == _TRUE else Verdict.REJECT
        # The population engines report plain (verdict, steps): no node
        # identities, no stabilisation step (matching PopulationWorkload.run).
        return RunResult(
            verdict=verdict,
            steps=int(self.driver.step[row]),
            final_configuration=(),
        )


# ---------------------------------------------------------------------- #
# The batch backend layer
# ---------------------------------------------------------------------- #
class BatchBackend:
    """Strategy interface for executing all runs of a ``run_many`` batch.

    The contract mirrors :class:`~repro.core.backends.SimulationBackend` one
    level up: ``supports`` answers eligibility for a *workload* (not a single
    instance run), ``run_rows`` executes one run per seed and returns the
    per-run :class:`~repro.core.results.RunResult`\\ s in row order, and
    ``run_batch`` aggregates them into a
    :class:`~repro.core.batch.BatchResult` that is byte-identical to the
    sequential per-run loop's (including quorum truncation, which is applied
    to the completed rows in row order).
    """

    name: str = "abstract"

    def supports(self, workload) -> bool:
        """Whether this backend can faithfully batch the given workload."""
        raise NotImplementedError

    def run_rows(
        self,
        workload,
        seeds: list[int],
        early_stop: tuple | None = None,
        materialise_configurations: bool = True,
    ) -> list[RunResult]:
        """One run per seed, in row order — each equal to ``workload.run(seed)``.

        With ``early_stop`` (the ``(target, min_runs, runs)`` quorum
        contract) rows past the quorum stop position may be abandoned and
        returned as ``None``; with ``materialise_configurations=False`` the
        results carry empty final configurations (for callers about to drop
        them — all ``B`` results are resident at once, so O(B·n) state
        tuples are built only on request); see :meth:`_LockstepRun.run`.
        """
        raise NotImplementedError

    def run_batch(
        self,
        workload,
        runs: int,
        base_seed: int = 0,
        quorum: float | None = None,
        min_runs: int = 1,
        keep_results: bool = False,
    ) -> BatchResult:
        """The full ``run_many`` surface over :meth:`run_rows` + quorum folding.

        The quorum stopping rule is evaluated twice on the same data — live
        inside the engine (to abandon unneeded rows) and again by
        ``collect_batch`` over the returned row order (to fold the batch) —
        so the truncation position, ``stopped_early`` flag and every
        retained run are byte-identical to the sequential loop's.
        """
        target = quorum_target(runs, quorum)
        results = self.run_rows(
            workload,
            [derive_seed(base_seed, index) for index in range(runs)],
            early_stop=None if target is None else (target, min_runs, runs),
            materialise_configurations=keep_results,
        )
        return collect_batch(
            ((r.verdict, r.steps, r) for r in results),
            runs=runs,
            base_seed=base_seed,
            quorum=quorum,
            min_runs=min_runs,
            keep_results=keep_results,
        )


class VectorizedBatchBackend(BatchBackend):
    """The lockstep engine behind ``Workload.run_many`` (see module docstring)."""

    name = "vector-batch"

    def supports(self, workload) -> bool:
        """Whether the workload's per-run engine is count-level (see ``_plan``)."""
        return self._plan(workload) is not None

    def _plan(self, workload):
        """The lockstep constructor for a workload, or ``None`` if ineligible."""
        return self._plan_reason(workload)[0]

    def _plan_reason(self, workload):
        """``(lockstep constructor, None)``, or ``(None, reason)`` if ineligible.

        Eligibility is deliberately *exact-type* on the workload class (like
        the count backend's exact-type schedule rule): a subclass overriding
        ``run`` keeps its custom per-run semantics by falling back to the
        sequential loop, which calls ``run`` verbatim.  The reason is a short
        stable code — ``resolve_batch_backend`` reports it in the
        ``batch-fallback`` trace event so silent fallbacks are visible.
        """
        if _np is None:
            return None, "numpy-missing"
        from repro.workloads.machine import MachineWorkload
        from repro.workloads.population import PopulationWorkload, _MACHINE_BACKENDS

        options = workload.options
        if type(workload) is MachineWorkload:
            if workload.schedule_factory is not None:
                return None, "schedule-factory"
            if workload.backend_override is not None:
                return None, "backend-override"
            if options.record_trace:
                return None, "record-trace"
            if options.schedule != "random-exclusive":
                return None, "schedule-kind"
            if options.backend not in ("auto", "count"):
                return None, "backend-kind"
            if not COUNT_BACKEND.supports(
                workload.machine, workload.graph, _PROBE_SCHEDULE
            ):
                return None, "not-count-eligible"
            return self._machine_lockstep, None
        if type(workload) is PopulationWorkload:
            method = (
                "auto" if options.backend in _MACHINE_BACKENDS else options.backend
            )
            if options.schedule != "random-exclusive":
                return None, "schedule-kind"
            if method not in ("auto", "counts"):
                return None, "method-kind"
            if workload.count.total() < 2:
                return None, "population-too-small"
            return self._population_lockstep, None
        return None, "workload-kind"

    def run_rows(
        self,
        workload,
        seeds: list[int],
        early_stop: tuple | None = None,
        materialise_configurations: bool = True,
    ) -> list[RunResult]:
        """Lockstep-run one row per seed; bit-identical to per-run ``run`` calls."""
        plan = self._plan(workload)
        if plan is None:
            raise ValueError(
                f"workload {type(workload).__name__} is not batch-vectorizable; "
                f"check resolve_batch_backend before dispatching"
            )
        return plan(workload).run(
            [random.Random(seed) for seed in seeds],
            early_stop=early_stop,
            materialise_configurations=materialise_configurations,
        )

    # ------------------------------------------------------------------ #
    def _machine_lockstep(self, workload) -> _MachineLockstep:
        from repro.core.compile import compile_machine
        from repro.core.configuration import state_counts

        machine, graph, options = workload.machine, workload.graph, workload.options
        if options.memo_cap is not None:
            # Parity with MachineWorkload.run_with_schedule: the cap is
            # attached to the machine's shared compiled table up front.
            compile_machine(machine, memo_cap=options.memo_cap)
        counts = state_counts(
            machine.initial_state(graph.label_of(v)) for v in graph.nodes()
        )
        return _MachineLockstep(
            machine,
            graph.num_nodes,
            counts,
            options.max_steps,
            options.stability_window,
            memo_cap=options.memo_cap,
        )

    def _population_lockstep(self, workload) -> _PopulationLockstep:
        counts = dict(workload.protocol.initial_configuration(workload.count))
        return _PopulationLockstep(
            workload.protocol,
            counts,
            workload.options.max_steps,
            memo_cap=workload.options.memo_cap,
        )


VECTOR_BATCH = VectorizedBatchBackend()


def resolve_batch_backend(workload) -> BatchBackend | None:
    """The batch backend of a workload, or ``None`` for the per-run loop.

    The ladder mirrors ``resolve_backend``'s ``"auto"`` one level up: the
    count-vector lockstep engine whenever the workload's per-run engine is
    count-level, else the per-node lockstep engine
    (:mod:`repro.core.vector_pernode`) whenever the per-run engine is the
    compiled per-node one (non-clique machine instances, shipped compiled
    workloads), else the sequential per-run loop (``None``; also the answer
    whenever numpy is unavailable).  Deterministic workloads never reach
    this resolver — ``Workload.run_many`` handles them with the
    simulate-once-and-replicate shortcut first, which no batch engine can
    beat.

    A fall-through to the sequential loop was previously invisible; it now
    emits a one-line ``batch-fallback`` trace event carrying the per-rung
    eligibility reason codes, and bumps
    ``dispatch.fallback{reason=...}`` when metrics are enabled.
    """
    plan, count_reason = VECTOR_BATCH._plan_reason(workload)
    if plan is not None:
        return VECTOR_BATCH
    from repro.core.vector_pernode import VECTOR_PERNODE

    plan, pernode_reason = VECTOR_PERNODE._plan_reason(workload)
    if plan is not None:
        return VECTOR_PERNODE
    if count_reason == pernode_reason:
        reason = count_reason
    elif pernode_reason == "workload-kind":
        reason = count_reason
    elif count_reason == "workload-kind":
        reason = pernode_reason
    else:
        reason = f"{count_reason}/{pernode_reason}"
    trace_event(
        "batch-fallback",
        workload=type(workload).__name__,
        reason=reason,
        count=count_reason,
        pernode=pernode_reason,
    )
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("dispatch.fallback", reason=reason).inc()
    return None
