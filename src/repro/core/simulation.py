"""Concrete simulation of distributed automata (Monte-Carlo / trace engine).

The exact decision engine (:mod:`repro.core.verification`) quantifies over all
fair schedules via the configuration graph, but it is limited to small graphs.
This module runs a machine on a graph under a *concrete* schedule generator
and observes the resulting run: it records the trace, detects consensus, and
applies a stabilisation heuristic ("the configuration has been an accepting
consensus for the last ``stability_window`` steps and no transition is
enabled that would leave it" or simply a long quiet period).

Simulation never *proves* acceptance by stable consensus — it produces
positive evidence, which the benchmarks label as such.  For halting automata,
however, a simulated run that reaches a halted consensus is conclusive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.automaton import DistributedAutomaton
from repro.core.configuration import (
    Configuration,
    consensus_value,
    initial_configuration,
    neighborhood_of,
    successor,
)
from repro.core.graphs import LabeledGraph
from repro.core.machine import DistributedMachine
from repro.core.scheduler import (
    RandomExclusiveSchedule,
    ScheduleGenerator,
    Selection,
    SynchronousSchedule,
)


class Verdict(Enum):
    """Outcome of a simulated (or exactly decided) computation."""

    ACCEPT = "accept"
    REJECT = "reject"
    UNDECIDED = "undecided"
    INCONSISTENT = "inconsistent"

    def as_bool(self) -> bool | None:
        if self is Verdict.ACCEPT:
            return True
        if self is Verdict.REJECT:
            return False
        return None


@dataclass
class RunResult:
    """The outcome of one simulated run."""

    verdict: Verdict
    steps: int
    final_configuration: Configuration
    stabilised_at: int | None = None
    trace: list[Configuration] | None = None

    @property
    def accepted(self) -> bool:
        return self.verdict is Verdict.ACCEPT

    @property
    def rejected(self) -> bool:
        return self.verdict is Verdict.REJECT


@dataclass
class SimulationEngine:
    """Runs machines on graphs under concrete schedules.

    Parameters
    ----------
    max_steps:
        Hard bound on the number of scheduler steps.
    stability_window:
        The run is declared stabilised when the consensus value has not
        changed (and stayed a consensus) for this many consecutive steps, or
        when the configuration itself has been constant for this many steps.
    record_trace:
        Keep the full configuration trace (memory-heavy; used by the
        Figure 2 reproduction and by debugging).
    """

    max_steps: int = 10_000
    stability_window: int = 200
    record_trace: bool = False

    # ------------------------------------------------------------------ #
    def run_machine(
        self,
        machine: DistributedMachine,
        graph: LabeledGraph,
        schedule: ScheduleGenerator,
        start: Configuration | None = None,
    ) -> RunResult:
        """Run ``machine`` on ``graph`` under the given schedule generator."""
        configuration = (
            start if start is not None else initial_configuration(machine, graph)
        )
        trace: list[Configuration] | None = [configuration] if self.record_trace else None
        consensus_streak = 0
        quiet_streak = 0
        last_consensus = consensus_value(machine, configuration)
        stabilised_at: int | None = None
        step = 0
        for selection in schedule.selections(graph):
            if step >= self.max_steps:
                break
            step += 1
            next_configuration = successor(machine, graph, configuration, selection)
            if trace is not None:
                trace.append(next_configuration)
            if next_configuration == configuration:
                quiet_streak += 1
            else:
                quiet_streak = 0
            configuration = next_configuration
            current = consensus_value(machine, configuration)
            if current is not None and current == last_consensus:
                consensus_streak += 1
            else:
                consensus_streak = 0
            last_consensus = current
            if consensus_streak >= self.stability_window:
                stabilised_at = step
                break
            if quiet_streak >= self.stability_window and current is not None:
                stabilised_at = step
                break
        final_value = consensus_value(machine, configuration)
        if stabilised_at is not None and final_value is not None:
            verdict = Verdict.ACCEPT if final_value else Verdict.REJECT
        elif final_value is not None:
            # Ran out of steps but ended in a consensus: report it, flagged as
            # merely the final observation.
            verdict = Verdict.ACCEPT if final_value else Verdict.REJECT
        else:
            verdict = Verdict.UNDECIDED
        return RunResult(
            verdict=verdict,
            steps=step,
            final_configuration=configuration,
            stabilised_at=stabilised_at,
            trace=trace,
        )

    # ------------------------------------------------------------------ #
    def run_automaton(
        self,
        automaton: DistributedAutomaton,
        graph: LabeledGraph,
        schedule: ScheduleGenerator | None = None,
        seed: int | None = None,
    ) -> RunResult:
        """Run an automaton under a schedule appropriate for its class.

        If no schedule is given, a synchronous schedule is used for
        synchronous automata and a uniformly random exclusive schedule
        otherwise (the natural surrogate for pseudo-stochastic fairness, and
        a fair adversarial schedule as well).
        """
        if schedule is None:
            from repro.core.scheduler import SelectionMode

            if automaton.selection is SelectionMode.SYNCHRONOUS:
                schedule = SynchronousSchedule()
            else:
                schedule = RandomExclusiveSchedule(seed=seed)
        return self.run_machine(automaton.machine, graph, schedule)

    # ------------------------------------------------------------------ #
    def majority_vote(
        self,
        automaton: DistributedAutomaton,
        graph: LabeledGraph,
        repetitions: int = 5,
        base_seed: int = 0,
    ) -> Verdict:
        """Run several random-schedule simulations and combine the verdicts.

        If all decided runs agree the common verdict is returned; if they
        disagree the result is ``INCONSISTENT`` (evidence that either the
        automaton violates the consistency condition or the stabilisation
        heuristic fired too early); if no run decided, ``UNDECIDED``.
        """
        verdicts: list[Verdict] = []
        for repetition in range(repetitions):
            schedule = RandomExclusiveSchedule(seed=base_seed + repetition)
            result = self.run_automaton(automaton, graph, schedule=schedule)
            if result.verdict in (Verdict.ACCEPT, Verdict.REJECT):
                verdicts.append(result.verdict)
        if not verdicts:
            return Verdict.UNDECIDED
        if all(v is verdicts[0] for v in verdicts):
            return verdicts[0]
        return Verdict.INCONSISTENT


def synchronous_trace(
    machine: DistributedMachine, graph: LabeledGraph, steps: int
) -> list[Configuration]:
    """The (unique) synchronous run prefix of length ``steps``.

    The synchronous run is the workhorse of several lower-bound arguments
    (Lemmas 3.2, 3.4, Prop. D.1): under adversarial fairness it is a fair
    run, and on covering pairs / cliques / extended lines it proceeds in
    lock-step.
    """
    configuration = initial_configuration(machine, graph)
    everyone = frozenset(graph.nodes())
    trace = [configuration]
    for _ in range(steps):
        configuration = successor(machine, graph, configuration, everyone)
        trace.append(configuration)
    return trace


def enabled_nodes(
    machine: DistributedMachine, graph: LabeledGraph, configuration: Configuration
) -> list[int]:
    """Nodes whose individual selection would change the configuration.

    Used by stabilisation checks and by the reordering machinery: a
    configuration with no enabled node is a fixed point under every
    selection.
    """
    enabled = []
    for node in graph.nodes():
        neighborhood = neighborhood_of(machine, graph, configuration, node)
        if machine.step(configuration[node], neighborhood) != configuration[node]:
            enabled.append(node)
    return enabled
