"""Concrete simulation of distributed automata (Monte-Carlo / trace engine).

The exact decision engine (:mod:`repro.core.verification`) quantifies over all
fair schedules via the configuration graph, but it is limited to small graphs.
This module runs a machine on a graph under a *concrete* schedule generator
and observes the resulting run: it records the trace, detects consensus, and
applies a stabilisation heuristic ("the configuration has been an accepting
consensus for the last ``stability_window`` steps and no transition is
enabled that would leave it" or simply a long quiet period).

Simulation never *proves* acceptance by stable consensus — it produces
positive evidence, which the benchmarks label as such.  For halting automata,
however, a simulated run that reaches a halted consensus is conclusive.

The engine itself is a thin shim over the unified workload surface
(:mod:`repro.workloads`): ``run_machine`` and ``run_many`` delegate to an
ad-hoc :class:`~repro.workloads.machine.MachineWorkload`, whose run path
dispatches to a pluggable
:class:`~repro.core.backends.SimulationBackend`.  The default
(``backend="auto"``) uses the count-based vectorized backend on clique
instances — feasible up to populations of 10⁴–10⁶ agents — the compiled
per-node engine (:mod:`repro.core.compile`; O(deg) per step, bit-identical
to the reference) on every other instance, and the per-node reference loop
only when a per-step trace is requested; see :mod:`repro.core.backends` for
the scaling ladder.  Batches of runs (with derived per-run seeds, early
stopping and aggregate statistics) go through
:meth:`SimulationEngine.run_many`; because compilations are cached on the
machine, all runs of a batch share one growing transition table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.automaton import DistributedAutomaton
from repro.core.backends import (
    BackendUnsupported,
    CompiledPerNodeBackend,
    CountBasedBackend,
    PerNodeBackend,
    SimulationBackend,
    resolve_backend,
)
from repro.core.batch import BatchResult
from repro.core.configuration import (
    Configuration,
    initial_configuration,
    neighborhood_of,
    successor,
)
from repro.core.graphs import LabeledGraph
from repro.core.machine import DistributedMachine
from repro.core.results import RunResult, Verdict
from repro.core.scheduler import (
    RandomExclusiveSchedule,
    ScheduleGenerator,
    Selection,
    SynchronousSchedule,
)

__all__ = [
    "BackendUnsupported",
    "CompiledPerNodeBackend",
    "CountBasedBackend",
    "PerNodeBackend",
    "RunResult",
    "SimulationBackend",
    "SimulationEngine",
    "Verdict",
    "enabled_nodes",
    "synchronous_trace",
]


@dataclass
class SimulationEngine:
    """Runs machines on graphs under concrete schedules.

    Parameters
    ----------
    max_steps:
        Hard bound on the number of scheduler steps.
    stability_window:
        The run is declared stabilised when the consensus value has not
        changed (and stayed a consensus) for this many consecutive steps, or
        when the configuration itself has been constant for this many steps.
    record_trace:
        Keep the full configuration trace (memory-heavy; used by the
        Figure 2 reproduction and by debugging).  Forces the per-node
        reference backend — neither the count-based nor the compiled engine
        materialises per-step configurations.
    backend:
        ``"auto"`` (default), ``"per-node"``, ``"compiled"``, ``"count"``,
        or a :class:`~repro.core.backends.SimulationBackend` instance.
        ``"auto"`` selects the count-based engine for clique instances under
        random exclusive or synchronous schedules, the compiled per-node
        engine for every other instance, and the per-node reference loop
        when a trace is requested; naming a backend that cannot handle an
        instance raises :class:`~repro.core.backends.BackendUnsupported`.
    """

    max_steps: int = 10_000
    stability_window: int = 200
    record_trace: bool = False
    backend: str | SimulationBackend = "auto"

    # ------------------------------------------------------------------ #
    def _workload(self, machine: DistributedMachine, graph: LabeledGraph, **extra):
        """The ad-hoc :class:`~repro.workloads.machine.MachineWorkload` of
        this engine's settings — the unified run surface every engine call
        now delegates to.  Imported lazily: core is the base layer and
        :mod:`repro.workloads` imports it."""
        from repro.workloads.machine import MachineWorkload
        from repro.workloads.spec import EngineOptions

        backend = self.backend
        override = None
        if not isinstance(backend, str):
            backend, override = "auto", backend
        return MachineWorkload(
            machine=machine,
            graph=graph,
            options=EngineOptions(
                max_steps=self.max_steps,
                stability_window=self.stability_window,
                backend=backend,
                record_trace=self.record_trace,
                **extra.pop("options", {}),
            ),
            backend_override=override,
            **extra,
        )

    def backend_for(
        self,
        machine: DistributedMachine,
        graph: LabeledGraph,
        schedule: ScheduleGenerator,
    ) -> SimulationBackend:
        """The backend this engine would use for the given instance."""
        return resolve_backend(self.backend, machine, graph, schedule, self.record_trace)

    def run_machine(
        self,
        machine: DistributedMachine,
        graph: LabeledGraph,
        schedule: ScheduleGenerator,
        start: Configuration | None = None,
    ) -> RunResult:
        """Run ``machine`` on ``graph`` under the given schedule generator.

        Thin shim over the unified workload surface
        (:meth:`repro.workloads.machine.MachineWorkload.run_with_schedule`).
        """
        return self._workload(machine, graph).run_with_schedule(schedule, start=start)

    # ------------------------------------------------------------------ #
    def run_automaton(
        self,
        automaton: DistributedAutomaton,
        graph: LabeledGraph,
        schedule: ScheduleGenerator | None = None,
        seed: int | None = None,
    ) -> RunResult:
        """Run an automaton under a schedule appropriate for its class.

        If no schedule is given, a synchronous schedule is used for
        synchronous automata and a uniformly random exclusive schedule
        otherwise (the natural surrogate for pseudo-stochastic fairness, and
        a fair adversarial schedule as well).
        """
        if schedule is None:
            schedule = self._default_schedule(automaton, seed)
        return self.run_machine(automaton.machine, graph, schedule)

    @staticmethod
    def _default_schedule(
        automaton: DistributedAutomaton, seed: int | None
    ) -> ScheduleGenerator:
        from repro.core.scheduler import SelectionMode

        if automaton.selection is SelectionMode.SYNCHRONOUS:
            return SynchronousSchedule()
        return RandomExclusiveSchedule(seed=seed)

    # ------------------------------------------------------------------ #
    def run_many(
        self,
        automaton: DistributedAutomaton | DistributedMachine,
        graph: LabeledGraph,
        runs: int,
        base_seed: int = 0,
        schedule_factory: Callable[[int], ScheduleGenerator] | None = None,
        quorum: float | None = None,
        min_runs: int = 1,
        keep_results: bool = False,
    ) -> BatchResult:
        """Execute a batch of independent Monte-Carlo runs.

        Per-run seeds are derived deterministically from ``base_seed``
        (:func:`repro.core.batch.derive_seed`), so run ``i`` is reproducible
        in isolation and independent of how many runs the batch executes.
        ``schedule_factory`` maps a derived seed to a schedule generator
        (default: :class:`RandomExclusiveSchedule`); ``quorum`` enables early
        stopping once that fraction of the planned runs has returned the same
        decided verdict.  Returns a :class:`~repro.core.batch.BatchResult`
        with the verdict distribution and step percentiles.

        A synchronous automaton without an explicit ``schedule_factory`` has
        a *unique* run (the seed is ignored by :class:`SynchronousSchedule`),
        so the batch simulates it once and replicates the outcome instead of
        re-running the identical trajectory ``runs`` times.  ``quorum`` is
        ignored on that path: no compute can be saved, and truncating the
        replicated batch would misreport it as stopped early.
        """
        deterministic = False
        if isinstance(automaton, DistributedAutomaton):
            from repro.core.scheduler import SelectionMode

            machine = automaton.machine
            default_factory = lambda seed: self._default_schedule(automaton, seed)
            deterministic = (
                schedule_factory is None
                and automaton.selection is SelectionMode.SYNCHRONOUS
            )
        else:
            machine = automaton
            default_factory = lambda seed: RandomExclusiveSchedule(seed=seed)

        # Delegate the batch loop to the one Workload.run_many implementation:
        # a deterministic (synchronous) automaton maps to a declarative
        # synchronous-schedule workload (simulated once and replicated); every
        # other instance carries its schedule factory into the workload.
        if deterministic:
            workload = self._workload(machine, graph, options={"schedule": "synchronous"})
        else:
            workload = self._workload(
                machine, graph, schedule_factory=schedule_factory or default_factory
            )
        return workload.run_many(
            runs=runs,
            base_seed=base_seed,
            quorum=quorum,
            min_runs=min_runs,
            keep_results=keep_results,
        )

    # ------------------------------------------------------------------ #
    def majority_vote(
        self,
        automaton: DistributedAutomaton,
        graph: LabeledGraph,
        repetitions: int = 5,
        base_seed: int = 0,
    ) -> Verdict:
        """Run several random-schedule simulations and combine the verdicts.

        If all decided runs agree the common verdict is returned; if they
        disagree the result is ``INCONSISTENT`` (evidence that either the
        automaton violates the consistency condition or the stabilisation
        heuristic fired too early); if no run decided, ``UNDECIDED``.

        Implemented as a thin wrapper over :meth:`run_many`; per-run seeds
        are derived from ``base_seed`` via :func:`~repro.core.batch.derive_seed`.
        """
        batch = self.run_many(automaton, graph, runs=repetitions, base_seed=base_seed)
        return batch.consensus


def synchronous_trace(
    machine: DistributedMachine, graph: LabeledGraph, steps: int
) -> list[Configuration]:
    """The (unique) synchronous run prefix of length ``steps``.

    The synchronous run is the workhorse of several lower-bound arguments
    (Lemmas 3.2, 3.4, Prop. D.1): under adversarial fairness it is a fair
    run, and on covering pairs / cliques / extended lines it proceeds in
    lock-step.
    """
    configuration = initial_configuration(machine, graph)
    everyone = frozenset(graph.nodes())
    trace = [configuration]
    for _ in range(steps):
        configuration = successor(machine, graph, configuration, everyone)
        trace.append(configuration)
    return trace


def enabled_nodes(
    machine: DistributedMachine, graph: LabeledGraph, configuration: Configuration
) -> list[int]:
    """Nodes whose individual selection would change the configuration.

    Used by stabilisation checks and by the reordering machinery: a
    configuration with no enabled node is a fixed point under every
    selection.
    """
    enabled = []
    for node in graph.nodes():
        neighborhood = neighborhood_of(machine, graph, configuration, node)
        if machine.step(configuration[node], neighborhood) != configuration[node]:
            enabled.append(node)
    return enabled
