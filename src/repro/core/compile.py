"""Compiled transition kernels: interned states and memoised δ lookup tables.

:class:`~repro.core.machine.DistributedMachine` keeps its transition function
``δ : Q × [β]^Q → Q`` as an arbitrary callable — usually a lambda closing over
construction state.  That representation is maximally flexible but pays twice
in the simulation hot loop: every step re-executes python closure code, and
the machine as a whole cannot cross a process boundary (lambdas do not
pickle), so the sweep executor has to rebuild instances inside every worker.

:class:`CompiledMachine` fixes both costs without giving up laziness:

* **Interning** — states are mapped to dense integer ids on first sight, and
  the accepting/rejecting predicates are evaluated once per state and cached
  as flag arrays.  Engines built on top manipulate plain ints.
* **Memoisation** — δ is materialised on demand into lookup tables keyed by
  ``(state id, view key)``, where a view key is the node degree plus the
  β-capped neighbour counts as a sorted tuple of ``(state id, count)`` pairs.
  The capped view is exactly what the model lets a transition observe
  (Section 2.1), so the table is a faithful, loss-free image of δ.
* **Pickling** — everything except the live δ reference is plain data.  A
  pickled :class:`CompiledMachine` carries its interned states, init table,
  flag arrays and the transition entries learned so far; on the other side of
  the boundary it keeps answering every memoised view, and re-binds δ through
  an optional picklable ``loader`` callable the first time it meets a view it
  has not seen (raising :class:`CompiledMachineUnbound` if it has no loader).

:func:`run_compiled` is the incremental per-node engine built on top: the
configuration is a mutable int array, every node caches its neighbour-multiset
count vector (updated in O(deg) when a neighbour flips), and consensus is
tracked through per-verdict node counters — so one exclusive step costs
O(deg(v)) instead of the reference loop's O(n) full-configuration rebuild and
rescan.  The engine consumes ``schedule.selections(graph)`` exactly like the
reference :class:`~repro.core.backends.PerNodeBackend`, so for the same seed
it draws the same random stream and reproduces the reference run bit for bit:
same verdict, same step count, same ``stabilised_at``, same final
configuration.  The differential suite asserts this across graph families.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.machine import DistributedMachine, Neighborhood, State
from repro.core.results import RunResult, Verdict
from repro.obs.metrics import get_metrics
from repro.obs.tracing import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.configuration import Configuration
    from repro.core.graphs import LabeledGraph
    from repro.core.scheduler import ScheduleGenerator

#: A memo key for one neighbourhood view: ``(degree, ((state_id, capped), …))``
#: with the items sorted by state id.  The degree is part of the key because a
#: node legitimately knows ``|N|`` and transition functions may consult it.
ViewKey = tuple


def canonical_view_key(degree: int, counts: dict, beta: int) -> ViewKey:
    """The canonical :data:`ViewKey` of one neighbourhood.

    ``counts`` maps interned neighbour state ids to their *uncapped*
    multiplicities; the key caps each count at ``beta`` (the most a
    transition may observe, Section 2.1) and sorts the items by state id so
    that every engine building keys — the sequential
    :func:`run_compiled` loop and the lockstep batch engine
    (:mod:`repro.core.vector_pernode`) — lands on the same table entry for
    the same view.
    """
    return (
        degree,
        tuple(sorted((q, c if c < beta else beta) for q, c in counts.items())),
    )


class CompiledMachineUnbound(RuntimeError):
    """A compiled machine met an unmemoised view with no δ and no loader."""


class CompiledMachine:
    """The integer-interned, table-memoised form of a distributed machine.

    Build one through :func:`compile_machine` (which caches the compilation on
    the source machine so repeated runs share one table).  The instance is
    *bound* while it holds a live reference to the source machine; unpickling
    produces an unbound copy that serves every memoised view from its tables
    and calls ``loader`` (any picklable zero-argument callable returning the
    source :class:`~repro.core.machine.DistributedMachine`) to re-bind on the
    first miss.
    """

    def __init__(
        self,
        machine: DistributedMachine,
        loader: Callable[[], DistributedMachine] | None = None,
        memo_cap: int | None = None,
    ):
        self.name = machine.name
        self.beta = machine.beta
        self.loader = loader
        #: Upper bound on memoised ``(state, view) -> state`` entries; ``None``
        #: is unbounded.  The table grows with distinct views, which on
        #: high-degree graphs under schedule subclasses (the instances the
        #: count backend cannot take) is unbounded in the run length — the cap
        #: turns that into a bounded cache: views beyond it are evaluated
        #: through δ without being stored.
        self.memo_cap = memo_cap
        #: Lookup statistics, accumulated by the engines (see ``stats()``).
        self.hits = 0
        self.misses = 0
        self._entries = 0  # memoised entry count (tracked; table_size verifies)
        self._states: list[State] = []  # id -> state
        self._ids: dict[State, int] = {}  # state -> id
        self._accepting: list[bool] = []  # id -> machine.is_accepting(state)
        self._rejecting: list[bool] = []
        self._init_ids: dict = {}  # label -> id, eagerly filled (finite alphabet)
        self._table: dict[int, dict[ViewKey, int]] = {}  # state id -> view -> id
        self._machine: DistributedMachine | None = machine
        for label in machine.alphabet.labels:
            self._init_ids[label] = self.intern(machine.initial_state(label))

    # ------------------------------------------------------------------ #
    # Pickling: drop the live machine, keep every learned table entry.
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_machine"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def bound(self) -> bool:
        """Whether a live δ is attached (misses can be resolved directly)."""
        return self._machine is not None

    def bind(self, machine: DistributedMachine) -> None:
        """Re-attach a live source machine (after unpickling).

        The machine must agree with the compiled data; the check is
        necessarily partial (β and the init table), but catches binding a
        different construction outright.  Validation is read-only — the init
        states were interned eagerly at compile time, so a failed bind
        leaves the tables untouched and a later bind of the right machine
        starts clean.
        """
        if machine.beta != self.beta:
            raise ValueError(
                f"cannot bind {machine.name!r} (beta={machine.beta}) to compiled "
                f"{self.name!r} (beta={self.beta})"
            )
        for label, expected in self._init_ids.items():
            if self._ids.get(machine.initial_state(label)) != expected:
                raise ValueError(
                    f"cannot bind {machine.name!r}: init({label!r}) disagrees "
                    f"with the compiled init table of {self.name!r}"
                )
        self._machine = machine

    def _require_source(self) -> DistributedMachine:
        if self._machine is None:
            if self.loader is None:
                raise CompiledMachineUnbound(
                    f"compiled machine {self.name!r} is unbound (unpickled?) and "
                    f"has no loader; bind() a source machine to resolve new views"
                )
            self.bind(self.loader())
        return self._machine

    # ------------------------------------------------------------------ #
    # Interning
    # ------------------------------------------------------------------ #
    def intern(self, state: State) -> int:
        """The dense id of ``state``, classifying it on first sight."""
        sid = self._ids.get(state)
        if sid is None:
            machine = self._require_source()
            sid = len(self._states)
            self._states.append(state)
            self._ids[state] = sid
            self._accepting.append(machine.is_accepting(state))
            self._rejecting.append(machine.is_rejecting(state))
        return sid

    def state_of(self, sid: int) -> State:
        return self._states[sid]

    def init_id(self, label) -> int:
        try:
            return self._init_ids[label]
        except KeyError:
            raise ValueError(
                f"label {label!r} not in the alphabet of compiled {self.name!r}"
            ) from None

    def is_accepting_id(self, sid: int) -> bool:
        return self._accepting[sid]

    def is_rejecting_id(self, sid: int) -> bool:
        return self._rejecting[sid]

    # ------------------------------------------------------------------ #
    # Transition evaluation
    # ------------------------------------------------------------------ #
    def step_id(self, sid: int, view_key: ViewKey) -> int:
        """δ on interned ids, memoised; misses decode the view and call δ.

        A miss beyond ``memo_cap`` still answers (δ is evaluated directly)
        but is not stored, so the table never outgrows the cap.
        """
        row = self._table.get(sid)
        if row is None:
            row = self._table[sid] = {}
        nxt = row.get(view_key)
        if nxt is None:
            machine = self._require_source()
            degree, items = view_key
            counts = {self._states[q]: c for q, c in items}
            view = Neighborhood(counts, self.beta, total=degree)
            nxt = self.intern(machine.step(self._states[sid], view))
            if self.memo_cap is None or self._entries < self.memo_cap:
                row[view_key] = nxt
                self._entries += 1
            else:
                metrics = get_metrics()
                if metrics.enabled:
                    metrics.counter("memo.evictions", table="compiled").inc()
        return nxt

    # ------------------------------------------------------------------ #
    # Introspection (tests, diagnostics)
    # ------------------------------------------------------------------ #
    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def table_size(self) -> int:
        """Number of memoised ``(state, view) -> state`` entries."""
        return sum(len(row) for row in self._table.values())

    def record_lookups(self, hits: int, misses: int) -> None:
        """Fold one run's lookup counts into the lifetime statistics.

        The engines keep per-run counters in locals (the hit path is inlined
        in their hot loops) and flush them here once per run.  The same
        counts are mirrored into the process-wide metrics registry
        (``memo.hits{table=compiled}`` / ``memo.misses{table=compiled}``)
        when observability is enabled, so per-machine ``stats()`` and the
        sweep-wide ``repro stats`` report agree by construction.
        """
        self.hits += hits
        self.misses += misses
        metrics = get_metrics()
        if metrics.enabled:
            if hits:
                metrics.counter("memo.hits", table="compiled").inc(hits)
            if misses:
                metrics.counter("memo.misses", table="compiled").inc(misses)

    def stats(self) -> dict:
        """Memo-table health: a thin snapshot view over the flushed counters.

        ``hit_rate`` is ``None`` (never a ``ZeroDivisionError``) before the
        first lookup is recorded.
        """
        lookups = self.hits + self.misses
        return {
            "table_entries": self.table_size,
            "memo_cap": self.memo_cap,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / lookups) if lookups else None,
        }

    def __repr__(self) -> str:
        kind = "bound" if self.bound else "unbound"
        return (
            f"CompiledMachine(name={self.name!r}, beta={self.beta}, "
            f"states={self.num_states}, table={self.table_size}, {kind})"
        )


_CACHE_ATTR = "_compiled_machine_cache"


def compile_machine(
    machine: DistributedMachine,
    loader: Callable[[], DistributedMachine] | None = None,
    memo_cap: int | None = None,
) -> CompiledMachine:
    """The compiled form of ``machine``, cached on the machine itself.

    The cache makes every engine that compiles the same machine object —
    repeated ``run_machine`` calls, all runs of a ``run_many`` batch — share
    one growing transition table.  A ``loader`` passed on a later call is
    attached to the cached compilation if it has none yet; an explicit
    ``memo_cap`` (re)configures the shared table's bound.
    """
    compiled = getattr(machine, _CACHE_ATTR, None)
    if compiled is None:
        with span("compile", machine=machine.name):
            compiled = CompiledMachine(machine, loader=loader, memo_cap=memo_cap)
        machine.__dict__[_CACHE_ATTR] = compiled
    else:
        if loader is not None and compiled.loader is None:
            compiled.loader = loader
        if memo_cap is not None:
            compiled.memo_cap = memo_cap
    return compiled


# ---------------------------------------------------------------------- #
# The incremental per-node engine
# ---------------------------------------------------------------------- #
def run_compiled(
    compiled: CompiledMachine,
    graph: "LabeledGraph",
    schedule: "ScheduleGenerator",
    *,
    max_steps: int,
    stability_window: int,
    start: "Configuration | None" = None,
) -> RunResult:
    """Run a compiled machine on ``graph`` under ``schedule``; O(deg) per step.

    Bit-identical to :class:`~repro.core.backends.PerNodeBackend` for the
    same arguments (see the module docstring); the only observable it cannot
    produce is a per-step trace.
    """
    n = graph.num_nodes
    adj = [graph.neighbors(v) for v in graph.nodes()]
    if start is not None:
        states = [compiled.intern(s) for s in start]
    else:
        states = [compiled.init_id(graph.label_of(v)) for v in graph.nodes()]

    # Per-node cached neighbour-multiset vectors (uncapped counts; zero
    # entries are deleted so dict size tracks the occupied support).
    nbr_counts: list[dict[int, int]] = []
    for v in range(n):
        counts: dict[int, int] = {}
        for u in adj[v]:
            s = states[u]
            counts[s] = counts.get(s, 0) + 1
        nbr_counts.append(counts)

    # The flag arrays are live references: intern() appends to them in place,
    # so states discovered mid-run are classified without re-fetching.
    acc = compiled._accepting
    rej = compiled._rejecting
    num_acc = sum(1 for s in states if acc[s])
    num_rej = sum(1 for s in states if rej[s])

    beta = compiled.beta
    degrees = [len(neighbours) for neighbours in adj]
    # Per-node memoised view keys, invalidated when a neighbour flips.  A
    # node's own flip does not touch its key: the view excludes the node.
    view_keys: list[ViewKey | None] = [None] * n
    step_id = compiled.step_id
    table = compiled._table  # hit path inlined below; misses go via step_id

    consensus_streak = 0
    quiet_streak = 0
    # Accept-first tie-break, mirroring consensus_value: a configuration in
    # which every state is both accepting and rejecting reads as accepting.
    last = True if num_acc == n else False if num_rej == n else None
    stabilised_at: int | None = None
    step = 0
    # Lookup statistics stay in locals on the hot path; flushed once at the
    # end via record_lookups (a miss that the memo cap keeps out of the table
    # still counts as a miss — repeated δ evaluations are what the counter
    # is there to surface).
    hits = 0
    misses = 0
    for selection in schedule.selections(graph):
        if step >= max_steps:
            break
        step += 1
        # Evaluate every selected node on the *old* configuration.
        flips: list[tuple[int, int, int]] | None = None
        for v in selection:
            sid = states[v]
            key = view_keys[v]
            if key is None:
                key = canonical_view_key(degrees[v], nbr_counts[v], beta)
                view_keys[v] = key
            row = table.get(sid)
            nxt = row.get(key) if row is not None else None
            if nxt is None:
                misses += 1
                nxt = step_id(sid, key)
            else:
                hits += 1
            if nxt != sid:
                if flips is None:
                    flips = []
                flips.append((v, sid, nxt))
        if flips is None:
            quiet_streak += 1
        else:
            quiet_streak = 0
            for v, old, new in flips:
                states[v] = new
                num_acc += acc[new] - acc[old]
                num_rej += rej[new] - rej[old]
                for u in adj[v]:
                    counts = nbr_counts[u]
                    c = counts[old]
                    if c == 1:
                        del counts[old]
                    else:
                        counts[old] = c - 1
                    counts[new] = counts.get(new, 0) + 1
                    view_keys[u] = None
        current = True if num_acc == n else False if num_rej == n else None
        if current is not None and current == last:
            consensus_streak += 1
        else:
            consensus_streak = 0
        last = current
        if consensus_streak >= stability_window:
            stabilised_at = step
            break
        if quiet_streak >= stability_window and current is not None:
            stabilised_at = step
            break

    compiled.record_lookups(hits, misses)
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("engine.runs", engine="compiled").inc()
        metrics.counter("engine.steps", engine="compiled").inc(step)
    final_value = True if num_acc == n else False if num_rej == n else None
    if final_value is not None:
        verdict = Verdict.ACCEPT if final_value else Verdict.REJECT
    else:
        verdict = Verdict.UNDECIDED
    configuration = tuple(compiled.state_of(s) for s in states)
    return RunResult(
        verdict=verdict,
        steps=step,
        final_configuration=configuration,
        stabilised_at=stabilised_at,
        trace=None,
    )
