"""Semilinear sets and Presburger-style predicates on label counts.

Population protocols (on cliques) compute exactly the semilinear predicates
(Angluin et al., cited as [6]); the paper contrasts this with the NL power of
DAF-automata.  This module implements semilinear sets from scratch —
linear sets ``base + N·periods``, finite unions thereof, membership testing,
and the translation of threshold and modulo predicates into semilinear form —
so the population-protocol baseline has a genuine predicate substrate and the
tests can cross-check three independent evaluators (direct arithmetic,
semilinear membership, protocol simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.labels import Alphabet, Label, LabelCount
from repro.properties.base import LabellingProperty


@dataclass(frozen=True)
class LinearSet:
    """A linear set ``{ base + Σ_i n_i · period_i : n_i ∈ N }`` of dimension d."""

    base: tuple[int, ...]
    periods: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        dimension = len(self.base)
        for period in self.periods:
            if len(period) != dimension:
                raise ValueError("period vector dimension mismatch")
            if all(component == 0 for component in period):
                raise ValueError("zero period vectors are not allowed")
            if any(component < 0 for component in period):
                raise ValueError("period vectors must be non-negative")
        if any(component < 0 for component in self.base):
            raise ValueError("base vector must be non-negative")

    @property
    def dimension(self) -> int:
        return len(self.base)

    def contains(self, vector: tuple[int, ...]) -> bool:
        """Membership via bounded search over period multiplicities.

        Because all period vectors are non-negative and non-zero, the
        multiplicity of each period is bounded by the largest coordinate of
        ``vector``; a depth-first search with pruning decides membership
        exactly.
        """
        if len(vector) != self.dimension:
            raise ValueError("vector dimension mismatch")
        target = tuple(v - b for v, b in zip(vector, self.base))
        if any(component < 0 for component in target):
            return False
        return self._reachable(target, 0)

    def _reachable(self, remaining: tuple[int, ...], index: int) -> bool:
        if all(component == 0 for component in remaining):
            return True
        if index >= len(self.periods):
            return False
        period = self.periods[index]
        # Maximum multiplicity of this period without overshooting.
        bounds = [
            remaining[i] // period[i] for i in range(len(period)) if period[i] > 0
        ]
        max_multiplicity = min(bounds) if bounds else 0
        for multiplicity in range(max_multiplicity, -1, -1):
            nxt = tuple(
                remaining[i] - multiplicity * period[i] for i in range(len(period))
            )
            if any(component < 0 for component in nxt):
                continue
            if self._reachable(nxt, index + 1):
                return True
        return False


@dataclass(frozen=True)
class SemilinearSet:
    """A finite union of linear sets."""

    components: tuple[LinearSet, ...]

    @property
    def dimension(self) -> int:
        if not self.components:
            return 0
        return self.components[0].dimension

    def contains(self, vector: tuple[int, ...]) -> bool:
        return any(component.contains(vector) for component in self.components)

    def union(self, other: "SemilinearSet") -> "SemilinearSet":
        return SemilinearSet(self.components + other.components)


@dataclass(repr=False)
class SemilinearProperty(LabellingProperty):
    """A labelling property given by membership of the count vector in a semilinear set."""

    alphabet: Alphabet
    semilinear: SemilinearSet
    name: str = "semilinear"

    def evaluate(self, count: LabelCount) -> bool:
        return self.semilinear.contains(count.as_tuple())


# ---------------------------------------------------------------------- #
# Constructors for the standard predicates
# ---------------------------------------------------------------------- #
def _unit(dimension: int, index: int) -> tuple[int, ...]:
    return tuple(1 if i == index else 0 for i in range(dimension))


def threshold_semilinear(alphabet: Alphabet, label: Label, k: int) -> SemilinearProperty:
    """``x_label ≥ k`` as a semilinear set (one linear component)."""
    dimension = len(alphabet)
    index = alphabet.index(label)
    base = tuple(k if i == index else 0 for i in range(dimension))
    periods = tuple(_unit(dimension, i) for i in range(dimension))
    linear = LinearSet(base=base, periods=periods)
    return SemilinearProperty(
        alphabet=alphabet,
        semilinear=SemilinearSet((linear,)),
        name=f"semilinear({label} ≥ {k})",
    )


def modulo_semilinear(
    alphabet: Alphabet, label: Label, modulus: int, remainder: int
) -> SemilinearProperty:
    """``x_label ≡ remainder (mod modulus)`` as a semilinear set."""
    if modulus < 1:
        raise ValueError("modulus must be positive")
    dimension = len(alphabet)
    index = alphabet.index(label)
    base = tuple(remainder % modulus if i == index else 0 for i in range(dimension))
    periods = [
        tuple(modulus if i == index else 0 for i in range(dimension))
    ]
    periods.extend(_unit(dimension, i) for i in range(dimension) if i != index)
    linear = LinearSet(base=base, periods=tuple(periods))
    return SemilinearProperty(
        alphabet=alphabet,
        semilinear=SemilinearSet((linear,)),
        name=f"semilinear({label} ≡ {remainder} mod {modulus})",
    )


def majority_semilinear(
    alphabet: Alphabet, first: Label = "a", second: Label = "b", strict: bool = True
) -> SemilinearProperty:
    """Majority ``x_first > x_second`` (or ≥) as a semilinear set.

    The accepted vectors are ``{x : x_first - x_second ≥ c}`` with c ∈ {0, 1};
    as a semilinear set this is base ``c·e_first`` with periods: each unit
    vector except ``e_second``, plus ``e_first + e_second``.
    """
    dimension = len(alphabet)
    first_index = alphabet.index(first)
    second_index = alphabet.index(second)
    if first_index == second_index:
        raise ValueError("majority needs two distinct labels")
    constant = 1 if strict else 0
    base = tuple(constant if i == first_index else 0 for i in range(dimension))
    periods = [
        _unit(dimension, i) for i in range(dimension) if i != second_index
    ]
    paired = tuple(
        1 if i in (first_index, second_index) else 0 for i in range(dimension)
    )
    periods.append(paired)
    linear = LinearSet(base=base, periods=tuple(periods))
    return SemilinearProperty(
        alphabet=alphabet,
        semilinear=SemilinearSet((linear,)),
        name=f"semilinear-majority({first} {'>' if strict else '≥'} {second})",
    )
