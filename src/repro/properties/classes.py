"""Property classes of Figure 1: ISM, Trivial, Cutoff and helpers for NL/NSPACE.

Besides the cutoff classes (see :mod:`repro.properties.cutoff`) the
bounded-degree panel of Figure 1 uses *invariance under scalar multiplication*
(ISM): a labelling property ϕ is ISM iff ``ϕ(L) = ϕ(λ·L)`` for every λ ≥ 1.
DAf-automata on bounded-degree graphs can decide only ISM properties
(Corollary 3.3) and at least all homogeneous threshold predicates
(Proposition 6.3); the divisibility predicate sits in the gap.

NL and NSPACE(n) membership cannot be checked for a black-box predicate; the
library represents the classes constructively — a property "is in NL for our
purposes" when it is presented by an evaluator that a log-space machine could
implement (all the arithmetic predicates in this package qualify).  The class
enums here are used for bookkeeping in the Figure 1 benchmark tables.
"""

from __future__ import annotations

from repro.core.labels import LabelCount, enumerate_label_counts
from repro.properties.base import LabellingProperty
from repro.properties.cutoff import admits_cutoff_up_to, is_cutoff_one, is_trivial_up_to


def is_invariant_under_scaling(
    prop: LabellingProperty,
    max_per_label: int,
    max_factor: int,
    min_total: int = 1,
) -> bool:
    """Empirical ISM check: ``ϕ(L) = ϕ(λ·L)`` for every L and λ in the sweep."""
    for count in enumerate_label_counts(prop.alphabet, max_per_label, min_total):
        base = prop.evaluate(count)
        for factor in range(1, max_factor + 1):
            if prop.evaluate(count.scale(factor)) != base:
                return False
    return True


def ism_counterexample(
    prop: LabellingProperty,
    max_per_label: int,
    max_factor: int,
    min_total: int = 1,
) -> tuple[LabelCount, int] | None:
    """A pair ``(L, λ)`` with ``ϕ(L) ≠ ϕ(λ·L)``, if one exists in the sweep."""
    for count in enumerate_label_counts(prop.alphabet, max_per_label, min_total):
        base = prop.evaluate(count)
        for factor in range(1, max_factor + 1):
            if prop.evaluate(count.scale(factor)) != base:
                return count, factor
    return None


def classify_property(
    prop: LabellingProperty,
    max_per_label: int = 6,
    max_cutoff: int = 4,
    max_factor: int = 3,
) -> dict[str, object]:
    """Empirically classify a property against the Figure 1 classes.

    Returns a dictionary with the empirical findings over the sweep:
    ``trivial``, ``cutoff_1``, ``cutoff_bound`` (smallest bound found or
    ``None``), and ``ism``.  The Figure 1 (middle / right) benchmarks use
    this to tabulate, for each reference property, which classes could decide
    it according to the paper's characterisation.

    The cutoff sweep only tests bounds that the label-count sweep can actually
    refute (a cutoff at ``max_per_label`` or above is vacuously satisfied), so
    the effective maximum bound is capped at ``max_per_label − 2``.
    """
    effective_cutoff = max(1, min(max_cutoff, max_per_label - 2))
    return {
        "name": prop.name,
        "trivial": is_trivial_up_to(prop, max_per_label),
        "cutoff_1": is_cutoff_one(prop, max_per_label),
        "cutoff_bound": admits_cutoff_up_to(prop, effective_cutoff, max_per_label),
        "ism": is_invariant_under_scaling(prop, max_per_label, max_factor),
    }


def deciding_classes_arbitrary(classification: dict[str, object]) -> list[str]:
    """Which of the seven classes can decide a property with this classification
    on arbitrary networks, per the Figure 1 (middle) characterisation.

    A ``None`` cutoff bound is treated as "no cutoff within the sweep", i.e.
    only DAF remains.
    """
    deciders: list[str] = ["DAF"]
    if classification["cutoff_bound"] is not None:
        deciders.append("dAF")
    if classification["cutoff_1"]:
        deciders.extend(["dAf", "DAf"])
    if classification["trivial"]:
        deciders.extend(["daf", "Daf", "DaF"])
    order = ["daf", "Daf", "DaF", "dAf", "DAf", "dAF", "DAF"]
    return [c for c in order if c in deciders]


def deciding_classes_bounded(classification: dict[str, object], homogeneous_threshold: bool) -> list[str]:
    """Which classes can decide the property on bounded-degree networks
    (Figure 1, right).  ``homogeneous_threshold`` marks properties covered by
    the Proposition 6.3 lower bound for DAf."""
    deciders: list[str] = ["DAF", "dAF"]  # NSPACE(n) — everything here qualifies
    if homogeneous_threshold or (classification["cutoff_1"] and classification["ism"]):
        deciders.append("DAf")
    if classification["cutoff_1"]:
        deciders.append("dAf")
    if classification["trivial"]:
        deciders.extend(["daf", "Daf", "DaF"])
    order = ["daf", "Daf", "DaF", "dAf", "DAf", "dAF", "DAF"]
    return [c for c in order if c in deciders]
