"""Labelling properties: predicates on label counts.

A labelling property is a predicate ``ϕ : N^Λ → {0, 1}`` that depends only on
the label count of a graph, never on its structure (Definition A.1 / C.1).
Majority is a labelling property; "the graph is a cycle" is not.

:class:`LabellingProperty` is the abstract interface used by constructions
("build me an automaton deciding ϕ") and by the verification harness ("does
this automaton's verdict match ϕ on these graphs?").  Concrete properties
live in :mod:`repro.properties.threshold`, :mod:`repro.properties.cutoff` and
:mod:`repro.properties.presburger`; boolean combinators are provided here
because every property class in the paper is closed under them.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.graphs import LabeledGraph
from repro.core.labels import Alphabet, LabelCount


class LabellingProperty:
    """Abstract base class for labelling properties."""

    #: The alphabet the property talks about.
    alphabet: Alphabet
    #: A short human-readable name, used in benchmark tables.
    name: str = "property"

    def evaluate(self, count: LabelCount) -> bool:
        """Whether the label count satisfies the property."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def holds_on(self, graph: LabeledGraph) -> bool:
        """Evaluate the property on a graph via its label count."""
        return self.evaluate(graph.label_count())

    def __call__(self, count: LabelCount) -> bool:
        return self.evaluate(count)

    # Boolean combinators ------------------------------------------------ #
    def __and__(self, other: "LabellingProperty") -> "LabellingProperty":
        return AndProperty(self, other)

    def __or__(self, other: "LabellingProperty") -> "LabellingProperty":
        return OrProperty(self, other)

    def __invert__(self) -> "LabellingProperty":
        return NotProperty(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


@dataclass(repr=False)
class FunctionProperty(LabellingProperty):
    """A property given directly by a Python predicate on label counts."""

    alphabet: Alphabet
    function: Callable[[LabelCount], bool]
    name: str = "function-property"

    def evaluate(self, count: LabelCount) -> bool:
        return bool(self.function(count))


@dataclass(repr=False)
class TrivialProperty(LabellingProperty):
    """The two trivial properties: always true or always false.

    Halting classes (DaF and below) can decide exactly these (Prop. C.2).
    """

    alphabet: Alphabet
    value: bool
    name: str = "trivial"

    def __post_init__(self) -> None:
        self.name = f"trivial-{'true' if self.value else 'false'}"

    def evaluate(self, count: LabelCount) -> bool:
        return self.value


@dataclass(repr=False)
class AndProperty(LabellingProperty):
    left: LabellingProperty
    right: LabellingProperty

    def __post_init__(self) -> None:
        if self.left.alphabet != self.right.alphabet:
            raise ValueError("conjunction of properties over different alphabets")
        self.alphabet = self.left.alphabet
        self.name = f"({self.left.name} ∧ {self.right.name})"

    def evaluate(self, count: LabelCount) -> bool:
        return self.left.evaluate(count) and self.right.evaluate(count)


@dataclass(repr=False)
class OrProperty(LabellingProperty):
    left: LabellingProperty
    right: LabellingProperty

    def __post_init__(self) -> None:
        if self.left.alphabet != self.right.alphabet:
            raise ValueError("disjunction of properties over different alphabets")
        self.alphabet = self.left.alphabet
        self.name = f"({self.left.name} ∨ {self.right.name})"

    def evaluate(self, count: LabelCount) -> bool:
        return self.left.evaluate(count) or self.right.evaluate(count)


@dataclass(repr=False)
class NotProperty(LabellingProperty):
    inner: LabellingProperty

    def __post_init__(self) -> None:
        self.alphabet = self.inner.alphabet
        self.name = f"¬{self.inner.name}"

    def evaluate(self, count: LabelCount) -> bool:
        return not self.inner.evaluate(count)


def property_from_function(
    alphabet: Alphabet, function: Callable[[LabelCount], bool], name: str
) -> FunctionProperty:
    """Convenience wrapper for ad-hoc properties in tests and examples."""
    return FunctionProperty(alphabet=alphabet, function=function, name=name)
