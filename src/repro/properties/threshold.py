"""Threshold, homogeneous-threshold and related arithmetic labelling properties.

The paper's running examples:

* **Majority** — "more nodes carry label ``a`` than ``b``", i.e.
  ``x_a - x_b ≥ 1`` (strict) or ``x_a - x_b ≥ 0`` (non-strict).  Majority
  admits no cutoff, so DAf/dAf/dAF cannot decide it on arbitrary graphs
  (Corollary 3.6); DAF can (Lemma 5.1); bounded-degree DAf can
  (Proposition 6.3).
* **Homogeneous threshold predicates** — ``a1·x1 + … + al·xl ≥ 0`` with integer
  coefficients.  These are exactly the predicates the Section 6.1 algorithm
  decides, and they are invariant under scalar multiplication (ISM).
* **General (inhomogeneous) linear thresholds** — ``a·x ≥ c``; ``x_i ≥ k`` is
  the building block of the dAF = Cutoff characterisation (Lemma C.5).
* **Modulo / divisibility / parity / primality** — examples of NL (resp. ISM)
  properties beyond thresholds, used in the DAF experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.labels import Alphabet, Label, LabelCount
from repro.properties.base import LabellingProperty


@dataclass(repr=False)
class LinearThresholdProperty(LabellingProperty):
    """The predicate ``Σ_x coefficients[x] · L(x) ≥ constant``."""

    alphabet: Alphabet
    coefficients: dict[Label, int]
    constant: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        unknown = set(self.coefficients) - set(self.alphabet.labels)
        if unknown:
            raise ValueError(f"coefficients mention unknown labels {sorted(unknown)}")
        if not self.name:
            terms = " + ".join(
                f"{coefficient}·{label}"
                for label, coefficient in self.coefficients.items()
                if coefficient != 0
            )
            self.name = f"{terms or '0'} ≥ {self.constant}"

    def weighted_sum(self, count: LabelCount) -> int:
        return sum(
            coefficient * count[label]
            for label, coefficient in self.coefficients.items()
        )

    def evaluate(self, count: LabelCount) -> bool:
        return self.weighted_sum(count) >= self.constant

    @property
    def is_homogeneous(self) -> bool:
        """Homogeneous thresholds (constant 0) are the Section 6.1 predicates."""
        return self.constant == 0

    def coefficient_vector(self) -> tuple[int, ...]:
        """Coefficients in alphabet order (zero for unmentioned labels)."""
        return tuple(self.coefficients.get(label, 0) for label in self.alphabet)


@dataclass(repr=False)
class HomogeneousThresholdProperty(LinearThresholdProperty):
    """``a1·x1 + … + al·xl ≥ 0`` — the predicate family of Proposition 6.3."""

    def __post_init__(self) -> None:
        self.constant = 0
        super().__post_init__()


def majority_property(
    alphabet: Alphabet, first: Label = "a", second: Label = "b", strict: bool = True
) -> LinearThresholdProperty:
    """Majority: more (or at least as many) nodes labelled ``first`` than ``second``.

    The strict version ``x_first > x_second`` is encoded as
    ``x_first - x_second ≥ 1``; the non-strict version is homogeneous
    (``≥ 0``) and is therefore directly in the scope of the Section 6.1
    bounded-degree algorithm.
    """
    coefficients = {first: 1, second: -1}
    constant = 1 if strict else 0
    name = f"majority({first} {'>' if strict else '≥'} {second})"
    return LinearThresholdProperty(
        alphabet=alphabet, coefficients=coefficients, constant=constant, name=name
    )


def exists_label_property(alphabet: Alphabet, label: Label) -> LinearThresholdProperty:
    """``x_label ≥ 1`` — "some node carries this label", the Cutoff(1) generator."""
    return LinearThresholdProperty(
        alphabet=alphabet,
        coefficients={label: 1},
        constant=1,
        name=f"exists({label})",
    )


def at_least_k_property(alphabet: Alphabet, label: Label, k: int) -> LinearThresholdProperty:
    """``x_label ≥ k`` — the building block of the dAF = Cutoff result (Lemma C.5)."""
    return LinearThresholdProperty(
        alphabet=alphabet,
        coefficients={label: 1},
        constant=k,
        name=f"{label} ≥ {k}",
    )


@dataclass(repr=False)
class ModuloProperty(LabellingProperty):
    """``Σ coefficients[x]·L(x) ≡ remainder (mod modulus)`` — a semilinear, non-threshold example."""

    alphabet: Alphabet
    coefficients: dict[Label, int]
    modulus: int
    remainder: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.modulus < 1:
            raise ValueError("modulus must be positive")
        if not self.name:
            self.name = f"Σ·x ≡ {self.remainder} (mod {self.modulus})"

    def evaluate(self, count: LabelCount) -> bool:
        total = sum(
            coefficient * count[label]
            for label, coefficient in self.coefficients.items()
        )
        return total % self.modulus == self.remainder % self.modulus


def parity_property(alphabet: Alphabet, label: Label, even: bool = True) -> ModuloProperty:
    """Whether the number of nodes labelled ``label`` is even (or odd)."""
    return ModuloProperty(
        alphabet=alphabet,
        coefficients={label: 1},
        modulus=2,
        remainder=0 if even else 1,
        name=f"{label} {'even' if even else 'odd'}",
    )


@dataclass(repr=False)
class DivisibilityProperty(LabellingProperty):
    """``x_first | x_second`` — divisibility.

    This predicate is invariant under scalar multiplication but is *not* a
    homogeneous threshold, witnessing the gap between the DAf bounded-degree
    upper bound (ISM) and lower bound (homogeneous thresholds) that the paper
    points out in Section 6.
    """

    alphabet: Alphabet
    first: Label
    second: Label
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{self.first} | {self.second}"

    def evaluate(self, count: LabelCount) -> bool:
        divisor = count[self.first]
        dividend = count[self.second]
        if divisor == 0:
            return dividend == 0
        return dividend % divisor == 0


@dataclass(repr=False)
class PrimeSizeProperty(LabellingProperty):
    """Whether the total number of nodes is prime — the paper's example of an
    NL labelling property decidable by DAF but far outside Cutoff."""

    alphabet: Alphabet
    name: str = "|V| is prime"

    def evaluate(self, count: LabelCount) -> bool:
        n = count.total()
        if n < 2:
            return False
        factor = 2
        while factor * factor <= n:
            if n % factor == 0:
                return False
            factor += 1
        return True
