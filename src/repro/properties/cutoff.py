"""Cutoff properties and empirical membership checks for the Figure 1 classes.

The middle panel of Figure 1 characterises decision power in terms of

* ``Trivial``    — always true or always false,
* ``Cutoff(1)``  — ``ϕ(L) = ϕ(⌈L⌉_1)``: only the *support* of the label count
  matters (which labels occur at all),
* ``Cutoff``     — ``ϕ(L) = ϕ(⌈L⌉_K)`` for some finite K,
* ``NL``         — decidable in nondeterministic logarithmic space.

Membership of an arbitrary predicate in ``Cutoff`` is undecidable in general
(the predicate is an arbitrary function), so this module provides two things:

1. *Constructive* cutoff properties (:class:`CutoffProperty`) whose defining
   function manifestly only looks at the cutoff — these are the inputs to the
   dAf / dAF constructions.
2. *Empirical* checks (:func:`admits_cutoff_up_to`, :func:`is_cutoff_one`,
   :func:`is_trivial_up_to`) that test the defining equation over a finite
   sweep of label counts — exactly what the Figure 1 experiments need in
   order to confirm, e.g., that majority admits no cutoff below the sweep
   bound while thresholds ``x ≥ k`` admit cutoff ``k``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.labels import Alphabet, LabelCount, enumerate_label_counts
from repro.properties.base import LabellingProperty


@dataclass(repr=False)
class CutoffProperty(LabellingProperty):
    """A property of the form ``ϕ(L) = f(⌈L⌉_K)``.

    The function ``f`` is given on cutoff vectors; by construction the
    property is in ``Cutoff`` with bound ``K`` (and in ``Cutoff(1)`` when
    ``K = 1``).
    """

    alphabet: Alphabet
    bound: int
    function: Callable[[LabelCount], bool]
    name: str = ""

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise ValueError("cutoff bound must be at least 1")
        if not self.name:
            self.name = f"cutoff({self.bound})-property"

    def evaluate(self, count: LabelCount) -> bool:
        return bool(self.function(count.cutoff(self.bound)))


def support_property(
    alphabet: Alphabet, required: set[str], forbidden: set[str] | None = None
) -> CutoffProperty:
    """The Cutoff(1) property "all labels in ``required`` occur, none in ``forbidden``"."""
    forbidden = forbidden or set()

    def check(cut: LabelCount) -> bool:
        support = cut.support()
        return required.issubset(support) and not (forbidden & support)

    req = ",".join(sorted(required)) or "∅"
    forb = ",".join(sorted(forbidden)) or "∅"
    return CutoffProperty(
        alphabet=alphabet,
        bound=1,
        function=check,
        name=f"support⊇{{{req}}}, ∩{{{forb}}}=∅",
    )


def cutoff_table_property(
    alphabet: Alphabet, bound: int, accepted: set[tuple[int, ...]], name: str = ""
) -> CutoffProperty:
    """A Cutoff(K) property given by the explicit set of accepted cutoff vectors.

    This mirrors the proof of Proposition C.6, which writes an arbitrary
    Cutoff predicate as a disjunction over the accepted elements of
    ``[K]^Λ``.
    """

    def check(cut: LabelCount) -> bool:
        return cut.as_tuple() in accepted

    return CutoffProperty(
        alphabet=alphabet,
        bound=bound,
        function=check,
        name=name or f"table-cutoff({bound})",
    )


# ---------------------------------------------------------------------- #
# Empirical membership checks
# ---------------------------------------------------------------------- #
def admits_cutoff_at(
    prop: LabellingProperty, bound: int, max_per_label: int, min_total: int = 1
) -> bool:
    """Whether ``ϕ(L) = ϕ(⌈L⌉_bound)`` holds for every L in the finite sweep."""
    for count in enumerate_label_counts(prop.alphabet, max_per_label, min_total):
        if prop.evaluate(count) != prop.evaluate(count.cutoff(bound)):
            return False
    return True


def admits_cutoff_up_to(
    prop: LabellingProperty, max_bound: int, max_per_label: int, min_total: int = 1
) -> int | None:
    """The smallest cutoff bound ≤ ``max_bound`` consistent with the sweep, or None.

    ``None`` is evidence (not proof) that the property admits no cutoff —
    e.g. majority fails every bound as soon as ``max_per_label > bound``.
    """
    for bound in range(1, max_bound + 1):
        if admits_cutoff_at(prop, bound, max_per_label, min_total):
            return bound
    return None


def is_cutoff_one(prop: LabellingProperty, max_per_label: int, min_total: int = 1) -> bool:
    """Empirical Cutoff(1) membership over the sweep."""
    return admits_cutoff_at(prop, 1, max_per_label, min_total)


def is_trivial_up_to(prop: LabellingProperty, max_per_label: int, min_total: int = 1) -> bool:
    """Whether the property is constant over the finite sweep."""
    values = {
        prop.evaluate(count)
        for count in enumerate_label_counts(prop.alphabet, max_per_label, min_total)
    }
    return len(values) <= 1


def counterexample_to_cutoff(
    prop: LabellingProperty, bound: int, max_per_label: int, min_total: int = 1
) -> LabelCount | None:
    """A label count witnessing ``ϕ(L) ≠ ϕ(⌈L⌉_bound)``, if one exists in the sweep."""
    for count in enumerate_label_counts(prop.alphabet, max_per_label, min_total):
        if prop.evaluate(count) != prop.evaluate(count.cutoff(bound)):
            return count
    return None
