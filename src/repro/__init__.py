"""repro — reproduction of "Decision Power of Weak Asynchronous Models of
Distributed Computing" (Czerner, Guttenberg, Helfrich, Esparza; PODC 2021).

The package is organised into

* :mod:`repro.core` — the distributed-automata substrate: labelled graphs,
  machines with counting bounds, schedulers, runs, and exact decision of
  acceptance by stable consensus under adversarial or pseudo-stochastic
  fairness;
* :mod:`repro.properties` — labelling properties (majority, thresholds,
  cutoffs, semilinear predicates) and the Figure 1 property classes;
* :mod:`repro.extensions` — weak broadcasts, weak absence detection and
  rendez-vous transitions, together with the simulation constructions of
  Section 4 that compile them down to plain automata;
* :mod:`repro.constructions` — the automata built in the expressiveness
  proofs: Cutoff(1) detectors, dAF threshold automata, the DAF token
  construction for NL, and the bounded-degree DAf majority algorithm of
  Section 6.1;
* :mod:`repro.population` — population-protocol baselines;
* :mod:`repro.analysis` — limitation witnesses (Section 3) and the experiment
  harness that regenerates Figure 1.
"""

__version__ = "1.0.0"

from repro.core import (
    Alphabet,
    AutomatonClass,
    DistributedAutomaton,
    DistributedMachine,
    LabelCount,
    LabeledGraph,
    Neighborhood,
    SelectionMode,
    SimulationEngine,
    Verdict,
    automaton,
    decide,
)
from repro.properties import LabellingProperty, majority_property
from repro.workloads import (
    EngineOptions,
    InstanceSpec,
    Workload,
    build_workload,
    list_scenarios,
)

__all__ = [
    "Alphabet",
    "AutomatonClass",
    "DistributedAutomaton",
    "DistributedMachine",
    "EngineOptions",
    "InstanceSpec",
    "LabelCount",
    "LabeledGraph",
    "LabellingProperty",
    "Neighborhood",
    "SelectionMode",
    "SimulationEngine",
    "Verdict",
    "Workload",
    "__version__",
    "automaton",
    "build_workload",
    "decide",
    "list_scenarios",
    "majority_property",
]
