"""Quickstart for the experiment orchestration subsystem.

Builds a declarative sweep spec covering every workload family in the
scenario registry — detection machines, the weak-broadcast / absence /
rendez-vous compilations, and population protocols — runs it on two worker
processes, and aggregates the stored results into the per-point table and
per-scenario agreement reports.

A second `run_spec` call on the same spec is a no-op: the store keys results
by the spec's content hash, so completed tasks are never recomputed.  Kill
the script mid-sweep and re-run it to see the resume in action.

Run with:  python examples/sweep_quickstart.py

The same spec can be driven from the command line:

    python -m repro run examples/specs/smoke.json --workers 2
    python -m repro report examples/specs/smoke.json
"""

from __future__ import annotations

import tempfile

from repro.experiments import (
    ExperimentSpec,
    ResultStore,
    agreement_reports,
    run_spec,
    summarise,
    sweep_table,
)


def build_spec() -> ExperimentSpec:
    """One grid point (or two) per workload family; small and fast."""
    return ExperimentSpec.from_dict(
        {
            "name": "sweep-quickstart",
            "sweeps": [
                # Detection machine: flooding ∃a on three graph families.
                {"scenario": "exists-label", "grid": {"a": [0, 1], "b": [4], "graph": ["cycle", "star"]}},
                # Weak broadcasts (Lemma 4.7 compilation): x_a >= 2.
                {"scenario": "threshold-broadcast", "grid": {"a": [1, 2], "b": [2], "k": [2]}},
                # Absence detection (Lemma 4.9 compilation): "no b exists".
                {"scenario": "absence-probe", "grid": {"a": [1], "b": [2]}},
                # Rendez-vous transitions (Lemma 4.10 / Figure 4): parity.
                # The handshake's transient consensus stretches need a wider
                # stabilisation window than the spec default — override it
                # for this sweep only.
                {"scenario": "rendezvous-parity", "grid": {"a": [2, 3], "b": [3]},
                 "stability_window": 2000},
                # Classical population protocols on clique populations.
                {"scenario": "population-majority", "grid": {"a": [6], "b": [3]}},
                {"scenario": "population-threshold", "grid": {"a": [2, 3], "b": [4], "k": [3]}},
            ],
            "runs": 3,
            "base_seed": 2021,  # the PODC year; any int works
            "max_steps": 40_000,
            "stability_window": 600,
            "backend": "auto",
        }
    )


def main() -> None:
    spec = build_spec()
    print(f"spec {spec.name!r}, content key {spec.key()}, {len(spec.expand())} tasks\n")

    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)

        summary = run_spec(spec, store, workers=2)
        print(summary.summary())

        # Same spec, same store: everything is already there.
        resumed = run_spec(spec, store, workers=2)
        print(f"re-run: {resumed.summary()}\n")

        summaries = summarise(spec, store.load(spec))
        print(sweep_table(summaries))
        print()
        for report in agreement_reports(summaries):
            print(report.summary())


if __name__ == "__main__":
    main()
