"""Quickstart: one spec, one run surface — then the exact decision engine.

Every runnable workload of the reproduction — detection machines, the
broadcast/absence/rendez-vous compilations, population protocols — sits
behind the same two objects:

* :class:`repro.InstanceSpec` — a declarative, JSON round-trippable,
  picklable description of one instance (scenario + parameters + engine
  options);
* :class:`repro.Workload` — built from a spec with
  :func:`repro.build_workload`; ``run(seed)`` yields a
  :class:`~repro.core.results.RunResult`, ``run_many(...)`` a seed-derived
  Monte-Carlo :class:`~repro.core.batch.BatchResult`.

The example runs three workload kinds through that one surface, shows the
spec round-trip the sweep executor relies on, and finishes with the exact
decision engine (configuration graph, all fair schedules) for contrast.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import pickle

from repro import EngineOptions, InstanceSpec, build_workload, list_scenarios
from repro.core import Alphabet, cycle_graph, decide
from repro.constructions import exists_label_automaton


def main() -> None:
    print("-- The scenario registry (python -m repro list-scenarios) --")
    for scenario in list_scenarios():
        print(f"{scenario.name:<21} {scenario.kind}")

    print("\n-- One run surface across workload kinds --")
    specs = [
        # A flooding ∃a detector (per-node/compiled machine substrate).
        InstanceSpec("exists-label", {"a": 1, "b": 4, "graph": "cycle"}),
        # A Lemma 4.7 weak-broadcast compilation deciding x_a >= 2.
        InstanceSpec("threshold-broadcast", {"a": 2, "b": 2, "k": 2}),
        # A classical population protocol (its own clique engines).
        InstanceSpec("population-majority", {"a": 6, "b": 3}),
    ]
    for spec in specs:
        workload = build_workload(spec)
        result = workload.run(seed=42)
        print(
            f"{spec.scenario:<21} -> {result.verdict.value:<9} "
            f"after {result.steps} steps (expected: {workload.expected})"
        )

    print("\n-- Monte-Carlo batches: derived seeds, quorum early stop --")
    workload = build_workload(
        InstanceSpec(
            "exists-label",
            {"a": 1, "b": 6},
            EngineOptions(max_steps=10_000, stability_window=200),
        )
    )
    batch = workload.run_many(runs=20, base_seed=7, quorum=0.5)
    print(batch.summary())

    print("\n-- Specs are plain data: JSON and pickle round-trips --")
    spec = specs[0]
    assert InstanceSpec.from_json(spec.to_json()) == spec
    assert pickle.loads(pickle.dumps(spec)) == spec
    print(f"spec key {spec.key()} survives json+pickle; canonical form:")
    print(spec.to_json())

    print("\n-- Exact decision (all fair schedules, via the configuration graph) --")
    alphabet = Alphabet.of("a", "b")
    automaton = exists_label_automaton(alphabet, "a")
    for labels, name in [
        (["b", "a", "b", "b", "b"], "cycle with one a"),
        (["b", "b", "b", "b"], "cycle without a"),
    ]:
        graph = cycle_graph(alphabet, labels, name=name)
        report = decide(automaton, graph)
        print(
            f"{graph.name:<24} -> {report.verdict.value:<9} "
            f"({report.configuration_count} reachable configurations)"
        )


if __name__ == "__main__":
    main()
