"""Quickstart: build a distributed automaton, run it, and decide it exactly.

This example builds the simplest interesting automaton — the non-counting,
adversarial-fairness (dAf) automaton deciding "some node carries label a" —
runs it on a few graphs with the Monte-Carlo simulator, and then decides it
*exactly* with the configuration-graph engine, which quantifies over all fair
schedules.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    Alphabet,
    RandomExclusiveSchedule,
    SimulationEngine,
    cycle_graph,
    decide,
    line_graph,
    star_graph,
)
from repro.constructions import exists_label_automaton


def main() -> None:
    alphabet = Alphabet.of("a", "b")
    automaton = exists_label_automaton(alphabet, "a")
    print(f"Automaton: {automaton.name} (class {automaton.automaton_class})")

    graphs = [
        cycle_graph(alphabet, ["b", "a", "b", "b", "b"], name="cycle with one a"),
        line_graph(alphabet, ["b", "b", "b", "b"], name="line without a"),
        star_graph(alphabet, "b", ["b", "a", "b"], name="star with one a-leaf"),
    ]

    # backend="auto" picks the count-based engine on cliques and the
    # per-node reference elsewhere; see examples/large_populations.py for
    # the count backend at 10^4..10^6 agents.
    engine = SimulationEngine(max_steps=5_000, stability_window=100, backend="auto")
    print("\n-- Monte-Carlo simulation under a random fair schedule --")
    for graph in graphs:
        result = engine.run_machine(
            automaton.machine, graph, RandomExclusiveSchedule(seed=42)
        )
        print(
            f"{graph.name:<24} -> {result.verdict.value:<9} "
            f"(stabilised after {result.stabilised_at} steps)"
        )

    print("\n-- Exact decision (all fair schedules, via the configuration graph) --")
    for graph in graphs:
        report = decide(automaton, graph)
        print(
            f"{graph.name:<24} -> {report.verdict.value:<9} "
            f"({report.configuration_count} reachable configurations)"
        )


if __name__ == "__main__":
    main()
