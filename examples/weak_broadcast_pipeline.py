"""Example 4.6 and the Lemma 4.7 compilation pipeline.

The example builds the weak-broadcast automaton of Example 4.6, replays a run
on the five-node line of Figure 2, compiles the broadcasts away with the
three-phase construction of Lemma 4.7, and shows that the compiled run passes
through exactly the phase-0 snapshots that constitute a run of the original
automaton (the "extension" relation of Definition 4.1).

Run with:  python examples/weak_broadcast_pipeline.py
"""

from __future__ import annotations

from repro.core import Alphabet, RandomExclusiveSchedule, SimulationEngine, line_graph
from repro.extensions import (
    BroadcastMachine,
    WeakBroadcast,
    compile_broadcasts,
    is_phase_state,
    project_run,
    response_from_mapping,
)


def example_4_6(alphabet: Alphabet) -> BroadcastMachine:
    def delta(state, neighborhood):
        if state == "x" and neighborhood.has("a"):
            return "a"
        return state

    return BroadcastMachine(
        alphabet=alphabet,
        beta=1,
        init=lambda label: "a" if label == "a" else "b",
        delta=delta,
        broadcasts={
            "a": WeakBroadcast("a", "a", response_from_mapping({"x": "a"}), "a-bc"),
            "b": WeakBroadcast("b", "b", response_from_mapping({"b": "a", "a": "x"}), "b-bc"),
        },
        accepting={"a"},
        rejecting={"b", "x"},
        name="example-4.6",
    )


def main() -> None:
    alphabet = Alphabet.of("a", "b")
    machine = example_4_6(alphabet)
    line = line_graph(alphabet, ["b", "a", "a", "a", "b"], name="five-node line (Fig. 2)")

    print("-- One run of the weak-broadcast automaton (extended model) --")
    config = machine.initial_configuration(line)
    print(f"t=0  {config}")
    config = machine.broadcast_step(config, [0, 4], signal_of={1: 0, 2: 0, 3: 4})
    print(f"t=1  {config}   (both end nodes broadcast simultaneously)")
    config = machine.neighborhood_step(line, config, 2)
    print(f"t=2  {config}   (middle node reacts to an 'a' neighbour)")

    print("\n-- Lemma 4.7: compile the broadcasts into a plain automaton --")
    compiled = compile_broadcasts(machine)
    engine = SimulationEngine(max_steps=600, stability_window=600, record_trace=True)
    result = engine.run_machine(compiled, line, RandomExclusiveSchedule(seed=7))
    phase0_snapshots = project_run(result.trace, lambda s: not is_phase_state(s))
    print(f"compiled run: {result.steps} steps, "
          f"{len(phase0_snapshots)} all-phase-0 snapshots (a run of the original model)")
    for index, snapshot in enumerate(phase0_snapshots[:6]):
        print(f"  snapshot {index}: {snapshot}")
    intermediate = sum(
        1 for configuration in result.trace for s in configuration if is_phase_state(s)
    )
    print(f"intermediate (phase 1/2) node-states observed along the run: {intermediate}")


if __name__ == "__main__":
    main()
