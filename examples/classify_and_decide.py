"""Reproduce the Figure 1 (middle) classification for a set of reference properties.

For each property the example (1) classifies it empirically against the
Figure 1 property classes (Trivial / Cutoff(1) / Cutoff / beyond), (2) lists
which of the seven automata classes can decide it on arbitrary networks
according to the paper, and (3) demonstrates a matching construction from
this library where one exists, verifying it with the exact decision engine.

Run with:  python examples/classify_and_decide.py
"""

from __future__ import annotations

from repro.core import Alphabet, cycle_graph, decide
from repro.constructions import exists_label_automaton, threshold_daf_automaton
from repro.extensions.rendezvous import majority_with_movement
from repro.properties import (
    DivisibilityProperty,
    at_least_k_property,
    classify_property,
    deciding_classes_arbitrary,
    exists_label_property,
    majority_property,
    parity_property,
)


def main() -> None:
    alphabet = Alphabet.of("a", "b")
    properties = [
        exists_label_property(alphabet, "a"),
        at_least_k_property(alphabet, "a", 2),
        majority_property(alphabet, strict=True),
        parity_property(alphabet, "a", even=False),
        DivisibilityProperty(alphabet, "a", "b"),
    ]

    print(f"{'property':<18} {'trivial':<8} {'cutoff1':<8} {'cutoff':<8} {'ISM':<5} classes (arbitrary nets)")
    print("-" * 84)
    for prop in properties:
        info = classify_property(prop, max_per_label=5, max_cutoff=3)
        classes = ",".join(deciding_classes_arbitrary(info))
        bound = info["cutoff_bound"] if info["cutoff_bound"] is not None else "—"
        print(
            f"{prop.name:<18} {str(info['trivial']):<8} {str(info['cutoff_1']):<8} "
            f"{str(bound):<8} {str(info['ism']):<5} {classes}"
        )

    print("\n-- Matching constructions, verified exactly on small graphs --")
    witness = cycle_graph(alphabet, ["a", "a", "b"])
    exists_auto = exists_label_automaton(alphabet, "a")
    print(f"dAf  exists(a)    on aab-cycle: {decide(exists_auto, witness).verdict.value}")
    threshold_auto = threshold_daf_automaton(alphabet, "a", 2)
    print(
        "dAF  a ≥ 2        on aab-cycle: "
        f"{decide(threshold_auto, witness, max_configurations=500_000).verdict.value}"
    )
    majority_protocol = majority_with_movement(alphabet)
    print(
        "DAF  majority(a>b) on aab-cycle (graph population protocol level): "
        f"{majority_protocol.decide_pseudo_stochastic(witness).value}"
    )


if __name__ == "__main__":
    main()
