"""Large populations: the count-based backend and the batched runner.

The per-node simulation engine tops out around a few thousand nodes (every
step on an ``n``-clique costs O(n), and an explicit clique graph materialises
n(n-1)/2 edges).  On cliques the count-based backend removes both walls:

* :func:`repro.core.implicit_clique_graph` represents the clique without
  edges, so populations of 10⁴–10⁶ agents fit in memory;
* the count-based backend simulates in O(|Q|) per step and fast-forwards
  silent stretches, so those populations finish in seconds;
* ``SimulationEngine.run_many`` aggregates a batch of runs with derived
  per-run seeds, quorum early-stopping and step percentiles.

Run with:  python examples/large_populations.py
"""

from __future__ import annotations

import time

from repro.core import (
    Alphabet,
    RandomExclusiveSchedule,
    SimulationEngine,
    implicit_clique_graph,
)
from repro.core.labels import LabelCount
from repro.constructions import exists_label_machine
from repro.population import threshold_protocol


def main() -> None:
    alphabet = Alphabet.of("a", "b")
    machine = exists_label_machine(alphabet, "a")

    print("-- count-based backend: flooding on growing cliques --")
    for n in (1_000, 10_000, 100_000):
        graph = implicit_clique_graph(alphabet, ["a"] + ["b"] * (n - 1))
        engine = SimulationEngine(
            max_steps=50 * n, stability_window=200, backend="count"
        )
        start = time.perf_counter()
        result = engine.run_machine(machine, graph, RandomExclusiveSchedule(seed=1))
        elapsed = time.perf_counter() - start
        print(
            f"n={n:>7,}: {result.verdict.value:<7} after {result.steps:>9,} steps "
            f"in {elapsed:6.3f}s"
        )

    print("\n-- batched Monte-Carlo with quorum early-stop (n=5,000) --")
    graph = implicit_clique_graph(alphabet, ["a"] * 5 + ["b"] * 4_995)
    engine = SimulationEngine(max_steps=500_000, stability_window=200, backend="auto")
    batch = engine.run_many(machine, graph, runs=20, base_seed=0, quorum=0.5)
    print(batch.summary())

    print("\n-- population protocol, count engine, 100,000 agents --")
    protocol = threshold_protocol(alphabet, "a", 3)
    count = LabelCount.from_mapping(alphabet, {"a": 50_000, "b": 50_000})
    start = time.perf_counter()
    verdict, steps = protocol.simulate(
        count, max_steps=50_000_000, seed=3, method="counts"
    )
    elapsed = time.perf_counter() - start
    print(
        f"threshold(a≥3) on 100,000 agents: {verdict.value} after {steps:,} "
        f"interactions in {elapsed:.2f}s"
    )


if __name__ == "__main__":
    main()
