"""The headline algorithm: majority on bounded-degree graphs under adversarial scheduling.

Section 6.1 of the paper shows that on graphs of degree at most k a DAf
automaton (counting, stable consensus, adversarial fairness — in fact a
synchronous deterministic algorithm) decides every homogeneous threshold
predicate, in particular majority.  This example runs the algorithm on a few
bounded-degree graph families and margins and compares its verdict with the
ground-truth predicate.

Run with:  python examples/bounded_degree_majority.py
"""

from __future__ import annotations

from repro.core import Alphabet, cycle_graph, grid_graph, random_connected_graph
from repro.constructions import majority_protocol_bounded, run_cancellation, cancellation_machine, cancellation_converged
from repro.properties import majority_property


def main() -> None:
    alphabet = Alphabet.of("a", "b")
    prop = majority_property(alphabet, strict=False)

    print("-- Local cancellation alone (Lemma 6.1) --")
    machine = cancellation_machine(alphabet, {"a": 1, "b": -1}, degree_bound=2)
    demo = cycle_graph(alphabet, ["a", "b", "b", "b", "a", "b"])
    trace, _ = run_cancellation(machine, demo)
    print(f"initial contributions: {trace[0]}")
    print(f"final contributions:   {trace[-1]}  "
          f"(converged to the '{cancellation_converged(trace[-1], 2)}' case "
          f"after {len(trace) - 1} synchronous rounds)")

    print("\n-- Full §6.1 protocol: majority x_a ≥ x_b --")
    protocol = majority_protocol_bounded(alphabet, degree_bound=4)
    cases = []
    for a_count, b_count in [(6, 4), (4, 6), (5, 5), (9, 3), (2, 10)]:
        labels = ["a"] * a_count + ["b"] * b_count
        cases.append(cycle_graph(alphabet, labels, name=f"cycle a={a_count} b={b_count}"))
        cases.append(
            random_connected_graph(
                alphabet, labels, max_degree=4, seed=a_count * 13 + b_count,
                name=f"random a={a_count} b={b_count}",
            )
        )
    cases.append(grid_graph(alphabet, 3, 4, ["a", "b"] * 6, name="3x4 grid (tie)"))

    correct = 0
    for graph in cases:
        verdict, steps = protocol.decide(graph)
        expected = prop(graph.label_count())
        ok = verdict.as_bool() == expected
        correct += ok
        print(
            f"{graph.name:<24} degree≤{graph.max_degree()}  ->  {verdict.value:<7} "
            f"in {steps:>4} rounds   expected={expected}   {'OK' if ok else 'MISMATCH'}"
        )
    print(f"\n{correct}/{len(cases)} verdicts match the majority predicate")


if __name__ == "__main__":
    main()
