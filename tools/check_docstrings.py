"""pydocstyle-lite shim: the docstring rule now lives in ``repro.lint``.

Usage::

    python tools/check_docstrings.py [ROOT ...]

The real logic migrated into :mod:`repro.lint.docstrings`, where it runs as
the ``docstrings`` rule of ``python -m repro lint`` (single parse, single
traversal, shared with the other checkers).  This shim keeps the historical
entry point — and the ``DEFAULT_ROOTS`` / ``check_roots`` / ``check_file``
API that ``tests/test_docstrings.py`` imports — stable.

Exit status is the number of violations (0 = clean), capped at 125.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.lint.docstrings import (  # noqa: E402  (path bootstrap above)
    ALLOWED_UNDOCUMENTED_DUNDERS,
    DEFAULT_ROOTS,
    STRICT_FRAGMENTS,
    check_file,
    check_roots,
)

__all__ = [
    "ALLOWED_UNDOCUMENTED_DUNDERS",
    "DEFAULT_ROOTS",
    "STRICT_FRAGMENTS",
    "check_file",
    "check_roots",
    "main",
]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exits with the violation count."""
    roots = tuple(argv) if argv else DEFAULT_ROOTS
    problems = check_roots(roots)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"\n{len(problems)} docstring violation(s)", file=sys.stderr)
    else:
        checked = ", ".join(roots)
        print(f"docstring coverage clean under: {checked}")
    return min(len(problems), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
