"""pydocstyle-lite: enforce docstrings on the public simulation surface.

Usage::

    python tools/check_docstrings.py [ROOT ...]

Walks the given package roots (default: ``src/repro/workloads``,
``src/repro/core`` and ``src/repro/obs`` — the public API, the engine layer
whose invariants the rest of the repo builds on, and the observability
layer) and asserts, via ``ast`` (no imports, so a syntax-error-free tree is
the only requirement):

* every module has a module docstring;
* every public class (name not starting with ``_``) has a docstring;
* every public module-level function has a docstring;
* on the *strict* surface — ``repro/workloads`` and ``repro/obs`` plus the
  batch engine modules (``core/batch.py``, ``core/vector_batch.py``,
  ``core/vector_pernode.py``, ``core/streaks.py``) — every public method of a public class has a
  docstring too, except trivial dunders (``__init__`` and friends may lean
  on the class docstring).

Exit status is the number of violations (0 = clean).  Run by CI and by
``tests/test_docstrings.py``, so a missing docstring fails tier-1.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_ROOTS = ("src/repro/workloads", "src/repro/core", "src/repro/obs")

#: Path fragments whose public *methods* must be documented as well — the
#: unified Workload API and the batch/streak engine modules whose
#: invariants (seed derivation, bit-identity) live in prose.
STRICT_FRAGMENTS = (
    "repro/workloads/",
    "repro/obs/",
    "repro/core/batch.py",
    "repro/core/vector_batch.py",
    "repro/core/vector_pernode.py",
    "repro/core/streaks.py",
)

#: Dunder methods whose behaviour is defined by the data model; requiring a
#: docstring on each would add noise, not information.
ALLOWED_UNDOCUMENTED_DUNDERS = {
    "__init__",
    "__post_init__",
    "__repr__",
    "__str__",
    "__eq__",
    "__ne__",
    "__hash__",
    "__iter__",
    "__len__",
    "__contains__",
    "__getitem__",
    "__enter__",
    "__exit__",
    "__getstate__",
    "__setstate__",
}


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _needs_docstring(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return name not in ALLOWED_UNDOCUMENTED_DUNDERS
    return _is_public(name)


def check_file(path: Path) -> list[str]:
    """Violation descriptions for one Python source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    strict = any(str(path).endswith(f) or f in str(path) for f in STRICT_FRAGMENTS)
    problems: list[str] = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}: missing module docstring")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                problems.append(
                    f"{path}:{node.lineno}: public function {node.name!r} "
                    f"missing docstring"
                )
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                problems.append(
                    f"{path}:{node.lineno}: public class {node.name!r} "
                    f"missing docstring"
                )
            if not strict:
                continue
            for member in node.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _needs_docstring(member.name) and ast.get_docstring(member) is None:
                    problems.append(
                        f"{path}:{member.lineno}: public method "
                        f"{node.name}.{member.name} missing docstring"
                    )
    return problems


def check_roots(roots=DEFAULT_ROOTS, base: Path | None = None) -> list[str]:
    """Violations across every ``.py`` file under the given roots."""
    base = base if base is not None else Path(__file__).resolve().parent.parent
    problems: list[str] = []
    for root in roots:
        root_path = base / root
        if not root_path.exists():
            problems.append(f"{root_path}: root does not exist")
            continue
        for path in sorted(root_path.rglob("*.py")):
            problems.extend(check_file(path))
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exits with the violation count."""
    roots = tuple(argv) if argv else DEFAULT_ROOTS
    problems = check_roots(roots)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"\n{len(problems)} docstring violation(s)", file=sys.stderr)
    else:
        checked = ", ".join(roots)
        print(f"docstring coverage clean under: {checked}")
    return min(len(problems), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
