"""Figure 2: runs, extensions and reorderings of the Example 4.6 automaton.

The benchmark replays the three panels of Figure 2 on the five-node line:
(a) a run of the weak-broadcast automaton with two simultaneous broadcasts,
(b) an extension of that run produced by the compiled (Lemma 4.7) automaton,
(c) the projection of the compiled run back onto phase-0 snapshots, i.e. the
run it extends.  It measures the step overhead of the three-phase encoding.
"""

from __future__ import annotations

from repro.core import Alphabet, RandomExclusiveSchedule, SimulationEngine, line_graph
from repro.extensions import (
    BroadcastMachine,
    WeakBroadcast,
    compile_broadcasts,
    is_phase_state,
    project_run,
    response_from_mapping,
)


def example_4_6(ab: Alphabet) -> BroadcastMachine:
    def delta(state, neighborhood):
        if state == "x" and neighborhood.has("a"):
            return "a"
        return state

    return BroadcastMachine(
        alphabet=ab,
        beta=1,
        init=lambda label: "a" if label == "a" else "b",
        delta=delta,
        broadcasts={
            "a": WeakBroadcast("a", "a", response_from_mapping({"x": "a"}), "a-bc"),
            "b": WeakBroadcast("b", "b", response_from_mapping({"b": "a", "a": "x"}), "b-bc"),
        },
        accepting={"a"},
        rejecting={"b", "x"},
        name="example-4.6",
    )


def test_example_run_and_extension(benchmark, ab):
    machine = example_4_6(ab)
    line = line_graph(ab, ["b", "a", "a", "a", "b"])
    compiled = compile_broadcasts(machine)

    def run():
        # Panel (a): one extended-model run prefix with simultaneous broadcasts.
        config = machine.initial_configuration(line)
        extended_model_prefix = [config]
        config = machine.broadcast_step(config, [0, 4], signal_of={1: 0, 2: 0, 3: 4})
        extended_model_prefix.append(config)
        config = machine.neighborhood_step(line, config, 2)
        extended_model_prefix.append(config)
        # Panels (b)/(c): the compiled automaton's run and its phase-0 projection.
        engine = SimulationEngine(max_steps=800, stability_window=800, record_trace=True)
        result = engine.run_machine(compiled, line, RandomExclusiveSchedule(seed=7))
        snapshots = project_run(result.trace, lambda s: not is_phase_state(s))
        return extended_model_prefix, result.steps, snapshots

    prefix, compiled_steps, snapshots = benchmark(run)
    assert prefix[1] == ("b", "x", "x", "x", "b")
    assert len(snapshots) >= 1
    base_states = {"a", "b", "x"}
    assert all(set(configuration) <= base_states for configuration in snapshots)
    overhead = compiled_steps / max(1, len(snapshots) - 1) if len(snapshots) > 1 else float("inf")
    print(f"\n[Figure 2] compiled run: {compiled_steps} exclusive steps, "
          f"{len(snapshots)} phase-0 snapshots "
          f"(≈{overhead:.1f} compiled steps per simulated configuration change)"
          if overhead != float('inf') else
          f"\n[Figure 2] compiled run: {compiled_steps} steps, {len(snapshots)} snapshots")
