"""Figure 1 (middle): decision power on arbitrary networks.

For each class the benchmark runs the paper's witness construction (or
limitation witness) over a sweep of label counts and graph shapes:

* dAf / DAf = Cutoff(1): the exists-label automaton decides x ≥ 1 exactly;
* dAF = Cutoff: the compiled weak-broadcast threshold automaton decides
  x ≥ 2 exactly;
* DAF = NL: the rendez-vous majority protocol (compiled per Lemma 4.10 is
  exercised in bench_figure4) decides majority exactly;
* the halting classes and the no-cutoff classes are covered by the
  limitation benchmarks (bench_figure3 and the classification rows here).
"""

from __future__ import annotations

from repro.analysis.harness import check_decides_property
from repro.core import LabelCount
from repro.constructions import exists_label_automaton, threshold_daf_automaton
from repro.extensions.rendezvous import majority_with_movement
from repro.core.graphs import cycle_from_count, line_from_count
from repro.properties import (
    at_least_k_property,
    classify_property,
    deciding_classes_arbitrary,
    exists_label_property,
    majority_property,
)


def test_cutoff1_row_exists_label(benchmark, ab):
    """dAf decides Cutoff(1): x_a ≥ 1 verified exactly over the sweep."""
    auto = exists_label_automaton(ab, "a")
    prop = exists_label_property(ab, "a")
    report = benchmark(
        check_decides_property, auto, prop, None, max_per_label=2, min_total=3
    )
    assert report.all_agree
    print(f"\n[Figure 1 middle] {report.summary()}")


def test_cutoff_row_threshold(benchmark, ab):
    """dAF decides Cutoff: x_a ≥ 2 via weak broadcasts, verified exactly."""
    auto = threshold_daf_automaton(ab, "a", 2)
    prop = at_least_k_property(ab, "a", 2)
    counts = [
        LabelCount.from_mapping(ab, {"a": a, "b": b})
        for a in range(0, 4)
        for b in range(0, 3)
        if a + b >= 3
    ]

    def run():
        return check_decides_property(
            auto, prop, counts=counts,
            graphs_per_count=lambda c: [cycle_from_count(c)],
            max_configurations=600_000,
        )

    report = benchmark(run)
    assert report.all_agree
    print(f"\n[Figure 1 middle] {report.summary()}")


def test_nl_row_majority(benchmark, ab):
    """DAF decides NL properties: majority verified exactly at the rendez-vous level."""
    protocol = majority_with_movement(ab)
    prop = majority_property(ab, strict=True)
    counts = [
        LabelCount.from_mapping(ab, {"a": a, "b": b})
        for a in range(0, 4)
        for b in range(0, 4)
        if 3 <= a + b <= 5
    ]

    def run():
        agree = 0
        for count in counts:
            for graph in (cycle_from_count(count), line_from_count(count)):
                verdict = protocol.decide_pseudo_stochastic(graph)
                agree += verdict.as_bool() == prop(count)
        return agree, 2 * len(counts)

    agree, total = benchmark(run)
    assert agree == total
    print(f"\n[Figure 1 middle] DAF/majority: {agree}/{total} graphs decided correctly")


def test_classification_rows(benchmark, ab):
    """The property-side of the table: which classes can decide which reference property."""

    def classify_all():
        rows = {}
        for prop, homogeneous in [
            (exists_label_property(ab, "a"), False),
            (at_least_k_property(ab, "a", 2), False),
            (majority_property(ab, strict=False), True),
        ]:
            info = classify_property(prop, max_per_label=5, max_cutoff=3)
            rows[prop.name] = deciding_classes_arbitrary(info)
        return rows

    rows = benchmark(classify_all)
    assert rows["exists(a)"] == ["dAf", "DAf", "dAF", "DAF"]
    assert rows["a ≥ 2"] == ["dAF", "DAF"]
    assert rows["majority(a ≥ b)"] == ["DAF"]
    print("\n[Figure 1 middle] deciding classes per property (arbitrary networks):")
    for name, classes in rows.items():
        print(f"  {name:<16} -> {', '.join(classes)}")
