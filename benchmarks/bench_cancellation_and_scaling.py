"""Lemma 6.1 / Prop. 6.3 supporting series: cancellation convergence and
majority rounds as a function of graph size, plus verifier scaling.

These series back the bounded-degree majority headline with measurable data:
how many synchronous rounds P_cancel needs to converge, how many super-steps
the full §6.1 protocol needs across sizes and margins, and how the exact
decision engine's configuration counts grow.
"""

from __future__ import annotations

from repro.analysis.convergence import ConvergenceSample, ConvergenceSeries, reachable_configuration_count
from repro.constructions import (
    cancellation_converged,
    cancellation_machine,
    exists_label_machine,
    majority_protocol_bounded,
    run_cancellation,
)
from repro.core import cycle_graph
from repro.properties import majority_property


def test_cancellation_convergence_rounds(benchmark, ab):
    """Rounds until P_cancel reaches a fixed point, for growing cycles with negative sum."""
    machine = cancellation_machine(ab, {"a": 1, "b": -1}, degree_bound=2)

    def run():
        rounds = {}
        for n in (6, 10, 14, 18):
            a_count = n // 2 - 1
            labels = ["a"] * a_count + ["b"] * (n - a_count)
            graph = cycle_graph(ab, labels)
            trace, fixed = run_cancellation(machine, graph, max_steps=4_000)
            assert fixed
            assert cancellation_converged(trace[-1], 2) in ("negative", "small")
            rounds[n] = len(trace) - 1
        return rounds

    rounds = benchmark(run)
    print("\n[Lemma 6.1] P_cancel rounds to convergence (cycles, sum = -2):")
    for n, r in rounds.items():
        print(f"  n={n:>3}: {r} synchronous rounds")


def test_majority_rounds_scaling(benchmark, ab):
    """Super-steps of the §6.1 protocol across sizes and margins."""
    protocol = majority_protocol_bounded(ab, degree_bound=2)
    prop = majority_property(ab, strict=False)

    def run():
        series = ConvergenceSeries("bounded-degree majority on cycles", [])
        for n in (6, 10, 14):
            for margin in (-2, 0, 2):
                a_count = (n + margin) // 2
                labels = ["a"] * a_count + ["b"] * (n - a_count)
                graph = cycle_graph(ab, labels)
                verdict, steps = protocol.decide(graph, max_steps=600)
                series.samples.append(
                    ConvergenceSample(
                        graph_name=f"cycle n={n} margin={margin}",
                        nodes=n,
                        steps=steps,
                        verdict=verdict.value,
                        correct=verdict.as_bool() == prop(graph.label_count()),
                    )
                )
        return series

    series = benchmark(run)
    assert series.accuracy() == 1.0
    print(f"\n[Prop. 6.3] {series.summary()}")
    for size, mean_steps in series.by_size().items():
        print(f"  n={size:>3}: mean {mean_steps:.0f} super-steps")


def test_verifier_scaling(benchmark, ab):
    """Reachable configuration counts of the exact decision engine."""
    machine = exists_label_machine(ab, "a")

    def run():
        sizes = {}
        for n in (3, 4, 5, 6):
            labels = ["a"] + ["b"] * (n - 1)
            sizes[n] = reachable_configuration_count(machine, cycle_graph(ab, labels))
        return sizes

    sizes = benchmark(run)
    assert all(sizes[n] <= 2**n for n in sizes)
    print("\n[Verifier] reachable configurations of the flooding automaton on cycles:")
    for n, count in sizes.items():
        print(f"  n={n}: {count} configurations")
