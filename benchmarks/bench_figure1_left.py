"""Figure 1 (left): the seven equivalence classes and the selection collapse.

The panel's content is structural: 24 combinations collapse to 7 classes, and
in particular the selection mode (exclusive / synchronous / liberal) does not
affect the decision power.  The benchmark re-checks the collapse empirically
on a concrete automaton — the same machine is decided exactly under all three
selection modes and must give identical verdicts — and reports the lattice.
"""

from __future__ import annotations

from repro.core import SelectionMode, Verdict, automaton, cycle_graph, decide, star_graph
from repro.core.hierarchy import SEVEN_CLASSES, classes_deciding_majority, full_table, is_included
from repro.constructions import exists_label_machine


def _collapse_check(ab) -> dict[str, Verdict]:
    machine = exists_label_machine(ab, "a")
    graphs = [
        cycle_graph(ab, ["a", "b", "b"]),
        cycle_graph(ab, ["b", "b", "b"]),
        star_graph(ab, "b", ["a", "b"]),
    ]
    verdicts: dict[str, Verdict] = {}
    for mode in (SelectionMode.EXCLUSIVE, SelectionMode.SYNCHRONOUS, SelectionMode.LIBERAL):
        for index, graph in enumerate(graphs):
            auto = automaton(machine, "dAF", selection=mode)
            verdicts[f"{mode.value}/{index}"] = decide(auto, graph).verdict
    return verdicts


def test_selection_collapse(benchmark, ab):
    """Exclusive, synchronous and liberal selection give identical verdicts."""
    verdicts = benchmark(_collapse_check, ab)
    by_graph: dict[str, set] = {}
    for key, verdict in verdicts.items():
        _, graph_index = key.split("/")
        by_graph.setdefault(graph_index, set()).add(verdict)
    assert all(len(values) == 1 for values in by_graph.values())
    print("\n[Figure 1 left] selection mode never changed a verdict "
          f"({len(verdicts)} decisions across 3 modes × 3 graphs)")


def test_seven_class_lattice(benchmark):
    """The inclusion lattice and the majority row of Figure 1."""

    def build():
        table = full_table()
        inclusions = sum(
            1
            for lower in SEVEN_CLASSES
            for upper in SEVEN_CLASSES
            if lower != upper and is_included(lower, upper)
        )
        return table, inclusions

    table, inclusions = benchmark(build)
    assert len(table) == 7
    assert classes_deciding_majority(bounded_degree=False) == ["DAF"]
    assert classes_deciding_majority(bounded_degree=True) == ["DAf", "dAF", "DAF"]
    print(f"\n[Figure 1 left] 7 classes, {inclusions} strict-or-equal inclusions in the lattice")
    for row in table:
        print(f"  {row.representative:<4} arbitrary={row.arbitrary.value:<10} "
              f"bounded={row.bounded_degree.value}")
