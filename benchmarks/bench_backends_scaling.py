"""Simulation-backend scaling: count-based vs per-node on large cliques.

The acceptance series for the backend architecture:

* a 10,000-agent clique *majority* instance (local-majority dynamics, the
  clique counterpart of the paper's majority workloads) simulated by the
  count-based backend at least 20× faster than the per-node reference —
  in practice the gap is 2–3 orders of magnitude, because a per-node step
  on an ``n``-clique costs O(n) while a count-based step costs O(|Q|);
* an exact end-to-end comparison at a size the per-node backend can still
  finish, asserting the two backends reach the same verdict;
* the batched Monte-Carlo runner with quorum early-stopping on a population
  two orders of magnitude beyond the seed's experiments;
* the count-vector population-protocol engine at 10⁴ agents.

Populations this size need :class:`repro.core.graphs.ImplicitCliqueGraph`;
an explicit 10⁴-node clique would materialise ~5·10⁷ edge objects.
"""

from __future__ import annotations

import time

from repro.core import (
    Alphabet,
    DistributedMachine,
    RandomExclusiveSchedule,
    SimulationEngine,
    Verdict,
    implicit_clique_graph,
)
from repro.core.labels import LabelCount
from repro.constructions import exists_label_machine
from repro.population import threshold_protocol


def local_majority_machine(alphabet: Alphabet, n: int) -> DistributedMachine:
    """Adopt the majority state among the neighbours (clique majority).

    On a clique every node sees the global counts minus itself, so with a
    margin ≥ 2 the initial majority is invariant and the run stabilises once
    every minority node has moved — a genuine majority instance that both
    backends can simulate.  ``beta = n`` makes the counting effectively
    uncapped, as the comparison needs true counts.
    """

    def delta(state, neighborhood):
        a = neighborhood.count("a")
        b = neighborhood.count("b")
        if a > b:
            return "a"
        if b > a:
            return "b"
        return state

    return DistributedMachine(
        alphabet=alphabet,
        beta=n,
        init=lambda label: label,
        delta=delta,
        accepting={"a"},
        rejecting={"b"},
        name=f"clique-majority(n={n})",
    )


def compare_backends(
    ab: Alphabet,
    n: int,
    a_count: int,
    per_node_budget: int,
    count_max_steps: int,
    seed: int = 1,
) -> dict:
    """Time both backends on one majority instance; see the module docstring.

    The per-node backend runs a fixed step budget (running it to
    stabilisation at n=10⁴ would take minutes); its per-step cost times the
    count backend's full trajectory length estimates the full per-node run.
    """
    machine = local_majority_machine(ab, n)
    labels = ["a"] * a_count + ["b"] * (n - a_count)
    graph = implicit_clique_graph(ab, labels, name=f"clique-{n}")

    count_engine = SimulationEngine(
        max_steps=count_max_steps, stability_window=200, backend="count"
    )
    start = time.perf_counter()
    count_run = count_engine.run_machine(machine, graph, RandomExclusiveSchedule(seed=seed))
    count_time = time.perf_counter() - start

    per_node_engine = SimulationEngine(
        max_steps=per_node_budget, stability_window=10**9, backend="per-node"
    )
    start = time.perf_counter()
    per_node_engine.run_machine(machine, graph, RandomExclusiveSchedule(seed=seed))
    per_node_time = time.perf_counter() - start

    per_node_step_cost = per_node_time / per_node_budget
    estimated_full_per_node = per_node_step_cost * count_run.steps
    return {
        "n": n,
        "verdict": count_run.verdict,
        "count_steps": count_run.steps,
        "count_time": count_time,
        "per_node_budget": per_node_budget,
        "per_node_time": per_node_time,
        "speedup": estimated_full_per_node / max(count_time, 1e-9),
    }


def end_to_end_comparison(ab: Alphabet, n: int, a_count: int, seed: int = 2) -> dict:
    """Both backends run the same instance to stabilisation (feasible n)."""
    machine = local_majority_machine(ab, n)
    labels = ["a"] * a_count + ["b"] * (n - a_count)
    graph = implicit_clique_graph(ab, labels, name=f"clique-{n}")
    timings = {}
    verdicts = {}
    for backend in ("count", "per-node"):
        engine = SimulationEngine(max_steps=200_000, stability_window=200, backend=backend)
        start = time.perf_counter()
        result = engine.run_machine(machine, graph, RandomExclusiveSchedule(seed=seed))
        timings[backend] = time.perf_counter() - start
        verdicts[backend] = result.verdict
    return {
        "verdicts": verdicts,
        "timings": timings,
        "speedup": timings["per-node"] / max(timings["count"], 1e-9),
    }


def test_count_backend_10k_clique_majority_speedup(benchmark, ab):
    """Acceptance criterion: ≥ 20× on a 10,000-agent clique majority instance."""
    stats = benchmark.pedantic(
        compare_backends,
        args=(ab, 10_000, 5_500, 800, 400_000),
        rounds=1,
        iterations=1,
    )
    assert stats["verdict"] is Verdict.ACCEPT
    assert stats["speedup"] >= 20, f"only {stats['speedup']:.1f}x"
    print(
        f"\n[backends] n=10,000 clique majority: count backend finished "
        f"{stats['count_steps']} steps in {stats['count_time']:.3f}s; per-node needs "
        f"{stats['per_node_time']:.3f}s for just {stats['per_node_budget']} steps "
        f"→ ≈{stats['speedup']:.0f}× faster end-to-end"
    )


def test_backends_agree_end_to_end(benchmark, ab):
    """At a per-node-feasible size both backends stabilise to the same verdict."""
    stats = benchmark.pedantic(
        end_to_end_comparison, args=(ab, 600, 330), rounds=1, iterations=1
    )
    assert stats["verdicts"]["count"] is Verdict.ACCEPT
    assert stats["verdicts"]["per-node"] is Verdict.ACCEPT
    assert stats["speedup"] >= 20, f"only {stats['speedup']:.1f}x"
    print(
        f"\n[backends] n=600 end-to-end: per-node {stats['timings']['per-node']:.3f}s, "
        f"count {stats['timings']['count']:.3f}s (≈{stats['speedup']:.0f}×), same verdict"
    )


def test_batched_runner_with_quorum(benchmark, ab):
    """run_many on a 5,000-node implicit clique: quorum early-stop + stats."""
    machine = exists_label_machine(ab, "a")
    graph = implicit_clique_graph(ab, ["a"] * 5 + ["b"] * 4_995)
    engine = SimulationEngine(max_steps=500_000, stability_window=200, backend="auto")

    def run():
        return engine.run_many(machine, graph, runs=20, base_seed=0, quorum=0.5)

    batch = benchmark.pedantic(run, rounds=1, iterations=1)
    assert batch.consensus is Verdict.ACCEPT
    assert batch.stopped_early
    print(f"\n[backends] batch on n=5,000 clique: {batch.summary()}")


def test_population_count_engine_10k_agents(benchmark, ab):
    """The population-protocol count engine at 10⁴ agents (threshold a ≥ 3)."""
    protocol = threshold_protocol(ab, "a", 3)
    count = LabelCount.from_mapping(ab, {"a": 5_000, "b": 5_000})

    def run():
        start = time.perf_counter()
        verdict, steps = protocol.simulate(
            count, max_steps=20_000_000, seed=3, method="counts"
        )
        return verdict, steps, time.perf_counter() - start

    verdict, steps, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert verdict is Verdict.ACCEPT
    print(
        f"\n[backends] population threshold(a≥3), 10,000 agents: {verdict.value} "
        f"after {steps} interactions in {elapsed:.3f}s (count engine)"
    )
