"""Simulation-backend scaling: count-based vs per-node on large cliques.

The acceptance series for the backend architecture:

* a 10,000-agent clique *majority* instance (local-majority dynamics, the
  clique counterpart of the paper's majority workloads) simulated by the
  count-based backend at least 20× faster than the per-node reference —
  in practice the gap is 2–3 orders of magnitude, because a per-node step
  on an ``n``-clique costs O(n) while a count-based step costs O(|Q|);
* an exact end-to-end comparison at a size the per-node backend can still
  finish, asserting the two backends reach the same verdict;
* the batched Monte-Carlo runner with quorum early-stopping on a population
  two orders of magnitude beyond the seed's experiments;
* the count-vector population-protocol engine at 10⁴ agents;
* the **pernode section** (``@pytest.mark.slow``): the compiled per-node
  engine (:mod:`repro.core.compile`) against the reference loop on a
  2,000-node *cycle* — a family the count backend cannot take — asserting a
  ≥ 10× speedup over the *identical* trajectory, plus per-step cost
  measurements at two sizes showing the compiled engine's cost is O(deg)
  while the reference's grows with n;
* the **batch section** (``@pytest.mark.batch``): the vectorized multi-seed
  batch engine (:mod:`repro.core.vector_batch`) against the sequential
  per-run loop at B ∈ {32, 256, 2048}, asserting ≥ 5× runs/sec at B=2048 on
  a count-eligible clique scenario and byte-identical batches throughout;
  plus the non-clique series: the lockstep per-node engine
  (:mod:`repro.core.vector_pernode`) on the 2,000-node cycle majority
  instance, asserting ≥ 3× runs/sec at B=512.

The measurement code is shared with ``python -m repro bench``
(:mod:`repro.experiments.backends_bench`), and every stat collected here is
written to ``BENCH_backends.json`` at the end of the session
(:mod:`repro.experiments.benchjson`), so the perf trajectory is machine
readable instead of vanishing into the console.

Populations this size need :class:`repro.core.graphs.ImplicitCliqueGraph`;
an explicit 10⁴-node clique would materialise ~5·10⁷ edge objects.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.core import SimulationEngine, Verdict, implicit_clique_graph
from repro.core.labels import LabelCount
from repro.constructions import exists_label_machine
from repro.experiments.backends_bench import (
    batch_throughput,
    compare_backends,
    compare_pernode_backends,
    end_to_end_comparison,
    pernode_batch_throughput,
    pernode_step_cost_scaling,
)
from repro.experiments.benchjson import write_bench_json
from repro.population import threshold_protocol

#: Stats accumulated by the tests in this module; written out at session end.
_BENCH_ENTRIES: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write ``BENCH_backends.json`` (repo root) after the module's tests ran."""
    yield
    if _BENCH_ENTRIES:
        write_bench_json(
            Path(__file__).resolve().parent.parent / "BENCH_backends.json",
            "backends",
            _BENCH_ENTRIES,
            meta={"source": "benchmarks/bench_backends_scaling.py"},
        )


def test_count_backend_10k_clique_majority_speedup(benchmark, ab):
    """Acceptance criterion: ≥ 20× on a 10,000-agent clique majority instance."""
    stats = benchmark.pedantic(
        compare_backends,
        args=(ab, 10_000, 5_500, 800, 400_000),
        rounds=1,
        iterations=1,
    )
    _BENCH_ENTRIES.append({"name": "count-vs-per-node-estimated", **stats})
    assert stats["verdict"] is Verdict.ACCEPT
    assert stats["speedup"] >= 20, f"only {stats['speedup']:.1f}x"
    print(
        f"\n[backends] n=10,000 clique majority: count backend finished "
        f"{stats['count_steps']} steps in {stats['count_time']:.3f}s; per-node needs "
        f"{stats['per_node_time']:.3f}s for just {stats['per_node_budget']} steps "
        f"→ ≈{stats['speedup']:.0f}× faster end-to-end"
    )


def test_backends_agree_end_to_end(benchmark, ab):
    """At a per-node-feasible size both backends stabilise to the same verdict."""
    stats = benchmark.pedantic(
        end_to_end_comparison, args=(ab, 600, 330), rounds=1, iterations=1
    )
    _BENCH_ENTRIES.append({"name": "count-vs-per-node-end-to-end", "n": 600, **stats})
    assert stats["verdicts"]["count"] is Verdict.ACCEPT
    assert stats["verdicts"]["per-node"] is Verdict.ACCEPT
    assert stats["speedup"] >= 20, f"only {stats['speedup']:.1f}x"
    print(
        f"\n[backends] n=600 end-to-end: per-node {stats['timings']['per-node']:.3f}s, "
        f"count {stats['timings']['count']:.3f}s (≈{stats['speedup']:.0f}×), same verdict"
    )


def test_batched_runner_with_quorum(benchmark, ab):
    """run_many on a 5,000-node implicit clique: quorum early-stop + stats."""
    machine = exists_label_machine(ab, "a")
    graph = implicit_clique_graph(ab, ["a"] * 5 + ["b"] * 4_995)
    engine = SimulationEngine(max_steps=500_000, stability_window=200, backend="auto")

    def run():
        start = time.perf_counter()
        batch = engine.run_many(machine, graph, runs=20, base_seed=0, quorum=0.5)
        return batch, time.perf_counter() - start

    batch, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    _BENCH_ENTRIES.append(
        {
            "name": "batched-runner-quorum",
            "n": 5_000,
            "runs_executed": batch.runs_executed,
            "planned_runs": batch.planned_runs,
            "consensus": batch.consensus,
            "stopped_early": batch.stopped_early,
            "wall_time": elapsed,
        }
    )
    assert batch.consensus is Verdict.ACCEPT
    assert batch.stopped_early
    print(f"\n[backends] batch on n=5,000 clique: {batch.summary()}")


@pytest.mark.slow
def test_compiled_pernode_cycle_speedup(benchmark, ab):
    """Acceptance criterion: ≥ 10× compiled-vs-reference on a 2,000-node cycle.

    Both engines run the *same* 20,000-step trajectory (they consume the
    same schedule stream), so the wall-time ratio is a clean per-step
    speedup and the equal outcomes double as a differential check.
    """
    stats = benchmark.pedantic(
        compare_pernode_backends, args=(ab, 2_000, 1_100, 20_000), rounds=1, iterations=1
    )
    _BENCH_ENTRIES.append({"name": "pernode-cycle-compiled-vs-reference", **stats})
    assert stats["identical_runs"], "compiled and reference runs diverged"
    assert stats["speedup"] >= 10, f"only {stats['speedup']:.1f}x"
    print(
        f"\n[backends] n=2,000 cycle majority, 20,000 identical steps: reference "
        f"{stats['timings']['per-node']:.3f}s, compiled "
        f"{stats['timings']['compiled']:.3f}s → ≈{stats['speedup']:.0f}× faster "
        f"({stats['reference_us_per_step']:.1f} vs "
        f"{stats['compiled_us_per_step']:.1f} µs/step)"
    )


@pytest.mark.slow
def test_compiled_pernode_step_cost_is_degree_bound(benchmark, ab):
    """Per-step cost on a cycle: reference grows ~linearly in n, compiled stays flat."""
    stats = benchmark.pedantic(
        pernode_step_cost_scaling,
        args=(ab, 2_000, 8_000, 20_000, 4_000),
        rounds=1,
        iterations=1,
    )
    _BENCH_ENTRIES.append({"name": "pernode-cycle-step-cost-scaling", **stats})
    # 4× the nodes: the reference per-step cost must grow strictly faster
    # than the compiled engine's (O(n) vs O(deg) with deg constant).
    assert stats["compiled_cost_ratio"] < stats["reference_cost_ratio"], stats
    print(
        f"\n[backends] cycle per-step cost n=2,000→8,000: reference "
        f"{stats['reference_us_per_step'][0]:.1f}→{stats['reference_us_per_step'][1]:.1f} µs "
        f"(×{stats['reference_cost_ratio']:.1f}), compiled "
        f"{stats['compiled_us_per_step'][0]:.1f}→{stats['compiled_us_per_step'][1]:.1f} µs "
        f"(×{stats['compiled_cost_ratio']:.1f})"
    )


@pytest.mark.batch
def test_vectorized_batch_throughput(benchmark, ab):
    """Acceptance criterion: ≥ 5× runs/sec at B=2048 on a count-eligible clique.

    The vectorized multi-seed engine runs all B seeds of a ``run_many`` batch
    in lockstep (shared successor-graph memoisation, one ``(B, |states|)``
    count matrix, array-form streak accounting); the sequential per-run loop
    is the oracle it must beat *and* byte-identically reproduce — the
    ``identical_batches`` flag asserts both on every entry.
    """
    stats = benchmark.pedantic(
        batch_throughput,
        args=(
            "clique-majority",
            {"a": 3_000, "b": 600},
            {"max_steps": 200_000, "stability_window": 200},
            (32, 256, 2048),
        ),
        rounds=1,
        iterations=1,
    )
    _BENCH_ENTRIES.extend(stats)
    for entry in stats:
        assert entry["identical_batches"], f"batch diverged at B={entry['runs']}"
    largest = stats[-1]
    assert largest["runs"] == 2048
    assert largest["speedup"] >= 5, f"only {largest['speedup']:.1f}x at B=2048"
    for entry in stats:
        print(
            f"\n[batch] clique-majority n=3,600 B={entry['runs']}: sequential "
            f"{entry['sequential_runs_per_sec']:.0f} runs/s, vectorized "
            f"{entry['vectorized_runs_per_sec']:.0f} runs/s "
            f"(≈{entry['speedup']:.1f}×, identical batches)"
        )


@pytest.mark.batch
def test_vectorized_batch_population_throughput(benchmark, ab):
    """The population series of the batch section — recorded, not gated.

    Per-interaction work is tiny on population protocols, so the lockstep
    win is the shared pair tables and node analysis amortising over B (no
    ≥ 5× floor here; byte-identity is still asserted on every entry).  This
    keeps the committed full-scale artifact's ``batch`` section the same
    shape as ``python -m repro bench``'s (both series, three batch sizes).
    """
    stats = benchmark.pedantic(
        batch_throughput,
        args=(
            "population-threshold",
            {"a": 60, "b": 40, "k": 3},
            {"max_steps": 200_000},
            (32, 256, 2048),
        ),
        rounds=1,
        iterations=1,
    )
    _BENCH_ENTRIES.extend(stats)
    for entry in stats:
        assert entry["identical_batches"], f"batch diverged at B={entry['runs']}"
        print(
            f"\n[batch] population-threshold n=100 B={entry['runs']}: sequential "
            f"{entry['sequential_runs_per_sec']:.0f} runs/s, vectorized "
            f"{entry['vectorized_runs_per_sec']:.0f} runs/s "
            f"(≈{entry['speedup']:.1f}×, identical batches)"
        )


@pytest.mark.batch
def test_lockstep_pernode_batch_throughput(benchmark, ab):
    """Acceptance criterion: ≥ 3× runs/sec at B=512 on the n=2,000 cycle majority.

    The non-clique counterpart of the count-level batch benchmark: all B
    seeds of the compiled per-node engine run in lockstep (shared memoised
    view table, per-row O(deg) configuration updates, array-form streak
    accounting), against the sequential per-run loop it must beat *and*
    byte-identically reproduce (``identical_batches`` asserts both on every
    entry).
    """
    stats = benchmark.pedantic(
        pernode_batch_throughput,
        args=(ab, 2_000, 1_100, 8_000, (64, 512)),
        rounds=1,
        iterations=1,
    )
    _BENCH_ENTRIES.extend(stats)
    for entry in stats:
        assert entry["identical_batches"], f"batch diverged at B={entry['runs']}"
    largest = stats[-1]
    assert largest["runs"] == 512
    assert largest["speedup"] >= 3, f"only {largest['speedup']:.1f}x at B=512"
    for entry in stats:
        print(
            f"\n[batch] cycle-majority n=2,000 B={entry['runs']}: sequential "
            f"{entry['sequential_runs_per_sec']:.0f} runs/s, lockstep "
            f"{entry['vectorized_runs_per_sec']:.0f} runs/s "
            f"(≈{entry['speedup']:.1f}×, identical batches)"
        )


def test_population_count_engine_10k_agents(benchmark, ab):
    """The population-protocol count engine at 10⁴ agents (threshold a ≥ 3)."""
    protocol = threshold_protocol(ab, "a", 3)
    count = LabelCount.from_mapping(ab, {"a": 5_000, "b": 5_000})

    def run():
        start = time.perf_counter()
        verdict, steps = protocol.simulate(
            count, max_steps=20_000_000, seed=3, method="counts"
        )
        return verdict, steps, time.perf_counter() - start

    verdict, steps, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    _BENCH_ENTRIES.append(
        {
            "name": "population-count-engine",
            "agents": 10_000,
            "verdict": verdict,
            "steps": steps,
            "wall_time": elapsed,
        }
    )
    assert verdict is Verdict.ACCEPT
    print(
        f"\n[backends] population threshold(a≥3), 10,000 agents: {verdict.value} "
        f"after {steps} interactions in {elapsed:.3f}s (count engine)"
    )
