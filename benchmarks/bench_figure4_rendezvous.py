"""Figure 4 / Lemma 4.10: the rendez-vous handshake simulation by DAF-automata.

Measures the cost of the five-status handshake: exact verdicts of the
compiled automaton on small graphs (who wins), and the step overhead of the
compiled machine relative to direct rendez-vous simulation on larger cycles.
"""

from __future__ import annotations

from repro.core import SimulationEngine, Verdict, automaton, cycle_graph, decide, line_graph
from repro.extensions.rendezvous import majority_with_movement, parity_protocol
from repro.extensions.rendezvous_sim import compile_rendezvous


def test_compiled_majority_exact(benchmark, ab):
    """The compiled DAF automaton reproduces the majority verdicts exactly."""
    auto = automaton(compile_rendezvous(majority_with_movement(ab)), "DAF")
    cases = [
        (cycle_graph(ab, ["a", "a", "b"]), Verdict.ACCEPT),
        (line_graph(ab, ["b", "a", "b"]), Verdict.REJECT),
        (line_graph(ab, ["a", "b", "a"]), Verdict.ACCEPT),
    ]

    def run():
        return [decide(auto, graph, max_configurations=500_000).verdict for graph, _ in cases]

    verdicts = benchmark(run)
    assert verdicts == [expected for _, expected in cases]
    print(f"\n[Figure 4] compiled rendez-vous majority: {len(cases)}/{len(cases)} exact verdicts correct")


def test_handshake_step_overhead(benchmark, ab):
    """Steps needed by the compiled machine vs the direct rendez-vous simulator."""
    protocol = parity_protocol(ab, "a")
    compiled = compile_rendezvous(protocol)
    graph = cycle_graph(ab, ["a", "b", "a", "b", "a", "b", "b", "b"])  # 3 a's: odd

    def run():
        direct_verdict, direct_steps = protocol.simulate(graph, seed=5)
        engine = SimulationEngine(max_steps=60_000, stability_window=800)
        compiled_result = engine.run_automaton(automaton(compiled, "DAF"), graph, seed=5)
        return direct_verdict, direct_steps, compiled_result.verdict, compiled_result.steps

    direct_verdict, direct_steps, compiled_verdict, compiled_steps = benchmark(run)
    assert direct_verdict is Verdict.ACCEPT
    assert compiled_verdict is Verdict.ACCEPT
    print(f"\n[Figure 4] parity on an 8-cycle: direct rendez-vous ≈{direct_steps} interactions, "
          f"compiled handshake ≈{compiled_steps} exclusive steps "
          f"(overhead ×{compiled_steps / max(1, direct_steps):.1f})")
