"""Figure 1 (right): decision power on bounded-degree networks.

* DAf ⊇ homogeneous thresholds (Prop. 6.3): the §6.1 synchronous algorithm
  decides majority on bounded-degree families across a sweep of margins.
* dAf = Cutoff(1) (Prop. D.1): the line-extension lock-step witness holds for
  non-counting machines and fails for counting ones.
* dAF = DAF = NSPACE(n): represented by the same constructions as the middle
  panel (they remain available on bounded-degree graphs); the benchmark
  reports the majority row, which is the panel's headline change.
"""

from __future__ import annotations

from repro.analysis.limitations import line_extension_lockstep_holds, line_extension_pair
from repro.constructions import exists_label_machine, majority_protocol_bounded
from repro.core import cycle_graph, grid_graph, random_connected_graph
from repro.properties import majority_property


def test_bounded_degree_majority_sweep(benchmark, ab):
    """Prop. 6.3: majority decided correctly across margins and graph families."""
    protocol = majority_protocol_bounded(ab, degree_bound=4)
    prop = majority_property(ab, strict=False)

    cases = []
    for a_count, b_count in [(3, 2), (2, 3), (3, 3), (5, 3), (2, 6), (6, 6), (7, 3)]:
        labels = ["a"] * a_count + ["b"] * b_count
        cases.append(cycle_graph(ab, labels))
        cases.append(random_connected_graph(ab, labels, max_degree=4, seed=a_count * 7 + b_count))
    cases.append(grid_graph(ab, 3, 4, ["a", "b"] * 6))

    def run():
        correct = 0
        rounds = []
        for graph in cases:
            verdict, steps = protocol.decide(graph)
            rounds.append(steps)
            correct += verdict.as_bool() == prop(graph.label_count())
        return correct, rounds

    correct, rounds = benchmark(run)
    assert correct == len(cases)
    print(f"\n[Figure 1 right] DAf majority on bounded degree: {correct}/{len(cases)} correct, "
          f"rounds min/max = {min(rounds)}/{max(rounds)}")


def test_dAf_line_extension_lockstep(benchmark, ab):
    """Prop. D.1: non-counting machines cannot see the duplicated end node."""
    from repro.core.machine import DistributedMachine

    line, extended = line_extension_pair(ab, ["a", "b", "b", "a", "b"], "a")
    non_counting = exists_label_machine(ab, "a")

    def counting_delta(state, neighborhood):
        ones = neighborhood.count_where(lambda s: isinstance(s, int) and s >= 1)
        return min(state + ones, 5)

    counting = DistributedMachine(
        alphabet=ab, beta=2,
        init=lambda label: 1 if label == "a" else 0,
        delta=counting_delta, name="counting-accumulator",
    )

    def run():
        return (
            line_extension_lockstep_holds(non_counting, line, extended, steps=8),
            line_extension_lockstep_holds(counting, line, extended, steps=8),
        )

    non_counting_locks, counting_locks = benchmark(run)
    assert non_counting_locks is True
    assert counting_locks is False
    print("\n[Figure 1 right] line+duplicate lock-step: non-counting=yes (dAf stuck at "
          "Cutoff(1)), counting=no (DAf can exploit degrees)")
