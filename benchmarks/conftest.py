"""Shared fixtures for the benchmark harness (one file per paper figure/table)."""

from __future__ import annotations

import pytest

from repro.core import Alphabet


@pytest.fixture(scope="session")
def ab() -> Alphabet:
    return Alphabet.of("a", "b")
