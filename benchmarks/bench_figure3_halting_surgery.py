"""Figure 3 / Lemma 3.1: the gluing construction that defeats halting acceptance.

The benchmark builds the glued graph for increasing halting times, checks the
lock-step property of the inner copies, and reports the contradictory local
verdicts that rule out non-trivial halting-decidable labelling properties.
"""

from __future__ import annotations

from repro.analysis.limitations import halting_surgery_graph, surgery_lockstep_holds
from repro.constructions import exists_label_machine
from repro.core import cycle_graph
from repro.core.simulation import synchronous_trace


def test_surgery_lockstep_and_contradiction(benchmark, ab):
    g = cycle_graph(ab, ["a", "a", "a", "a"])
    h = cycle_graph(ab, ["b", "b", "b", "b"])
    machine = exists_label_machine(ab, "a").make_halting()

    def run():
        results = []
        for rounds in (1, 2, 3):
            surgery = halting_surgery_graph(g, h, rounds, rounds)
            lock_first = surgery_lockstep_holds(machine, g, surgery, surgery.inner_first_nodes, rounds)
            lock_second = surgery_lockstep_holds(machine, h, surgery, surgery.inner_second_nodes, rounds)
            final = synchronous_trace(machine, surgery.graph, rounds)[-1]
            first_states = {final[v] for v in surgery.inner_first_nodes}
            second_states = {final[v] for v in surgery.inner_second_nodes}
            results.append((rounds, surgery.graph.num_nodes, lock_first, lock_second,
                            first_states, second_states))
        return results

    results = benchmark(run)
    for rounds, size, lock_first, lock_second, first_states, second_states in results:
        assert lock_first and lock_second
        assert first_states == {"yes"} and second_states == {"no"}
    print("\n[Figure 3] glued-graph sizes and verdict split (accepting copy vs rejecting copy):")
    for rounds, size, *_ in results:
        print(f"  halting time g=h={rounds}: {size} nodes, inner copies halt on "
              f"contradictory verdicts -> halting classes decide only trivial properties")
