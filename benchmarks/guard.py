"""Guard against silent performance regressions in ``BENCH_backends.json``.

Usage::

    python benchmarks/guard.py BASELINE.json FRESH.json [--ratio 0.5]
        [--require-section NAME ...]

Compares every entry of the committed *baseline* artifact that records a
numeric ``speedup`` against the entry of the same ``name`` in the freshly
generated artifact, and exits non-zero if any fresh speedup falls below
``ratio`` × its committed value (default: half).  Speedups are wall-time
*ratios* between two engines measured on the same machine, so the check is
robust to absolute machine speed — only a genuine relative regression (or a
vanished benchmark entry) trips it.

``--require-section`` asserts that *both* artifacts contain at least one
entry of the named ``section`` (repeatable) — so dropping a whole benchmark
series (e.g. the ``batch`` sweep-throughput section) cannot slip through as
"nothing to compare".

The two artifacts must be produced at the same scale: CI compares the
``--quick`` bench output against the committed quick baseline
(``benchmarks/BENCH_backends_quick_baseline.json``).  Stdlib only — no
dependencies beyond ``json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_speedups(path: Path) -> dict[str, float]:
    data = json.loads(path.read_text())
    out: dict[str, float] = {}
    for entry in data.get("entries", []):
        speedup = entry.get("speedup")
        if isinstance(speedup, (int, float)):
            out[entry["name"]] = float(speedup)
    return out


def load_sections(path: Path) -> set[str]:
    data = json.loads(path.read_text())
    return {
        entry["section"]
        for entry in data.get("entries", [])
        if isinstance(entry.get("section"), str)
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_backends.json")
    parser.add_argument("fresh", type=Path, help="freshly generated BENCH_backends.json")
    parser.add_argument(
        "--ratio",
        type=float,
        default=0.5,
        help="minimum fresh/committed speedup ratio (default 0.5)",
    )
    parser.add_argument(
        "--require-section",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless both artifacts contain an entry of this section "
        "(repeatable)",
    )
    args = parser.parse_args(argv)

    baseline = load_speedups(args.baseline)
    fresh = load_speedups(args.fresh)
    if not baseline:
        print(f"error: no speedup entries in baseline {args.baseline}", file=sys.stderr)
        return 2

    if args.require_section:
        missing = 0
        for label, path in (("baseline", args.baseline), ("fresh", args.fresh)):
            sections = load_sections(path)
            for name in args.require_section:
                if name not in sections:
                    print(
                        f"error: required section {name!r} missing from "
                        f"{label} artifact {path}",
                        file=sys.stderr,
                    )
                    missing += 1
        if missing:
            return 2

    failures = 0
    width = max(len(name) for name in baseline)
    for name, committed in sorted(baseline.items()):
        measured = fresh.get(name)
        if measured is None:
            print(f"{name:<{width}}  committed {committed:9.1f}x  MISSING from fresh run")
            failures += 1
            continue
        floor = args.ratio * committed
        verdict = "ok" if measured >= floor else f"REGRESSION (floor {floor:.1f}x)"
        print(
            f"{name:<{width}}  committed {committed:9.1f}x  fresh {measured:9.1f}x  {verdict}"
        )
        if measured < floor:
            failures += 1
    if failures:
        print(f"\n{failures} benchmark(s) regressed below {args.ratio:.0%} of committed", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} guarded speedups within {args.ratio:.0%} of committed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
