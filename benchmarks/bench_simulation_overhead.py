"""Simulation overheads of the Section 4 compilers (Lemmas 4.7, 4.9, 5.1).

For each compiler the benchmark measures the price of faithfulness: how many
exclusive steps the compiled plain automaton needs to reproduce behaviour the
extended model exhibits in a handful of steps, and (where exact decision is
feasible) that verdicts are preserved.
"""

from __future__ import annotations

from repro.constructions import (
    exists_broadcast_protocol,
    nl_daf_machine,
    threshold_broadcast_machine,
    threshold_daf_automaton,
)
from repro.core import SimulationEngine, Verdict, automaton, cycle_graph, decide


def test_broadcast_compiler_overhead(benchmark, ab):
    """Lemma 4.7: threshold x ≥ 2 — extended model vs compiled automaton."""
    graph = cycle_graph(ab, ["a", "a", "b", "b"])
    extended = threshold_broadcast_machine(ab, "a", 2)
    compiled_auto = threshold_daf_automaton(ab, "a", 2)

    def run():
        extended_verdict, extended_steps = extended.simulate(graph, seed=3)
        engine = SimulationEngine(max_steps=20_000, stability_window=400)
        compiled_batch = engine.run_many(compiled_auto, graph, runs=3, base_seed=3)
        exact = decide(compiled_auto, graph, max_configurations=600_000).verdict
        return extended_verdict, extended_steps, compiled_batch, exact

    ext_verdict, ext_steps, batch, exact = benchmark(run)
    assert ext_verdict is Verdict.ACCEPT and batch.consensus is Verdict.ACCEPT and exact is Verdict.ACCEPT
    print(f"\n[Lemma 4.7] threshold a≥2 on a 4-cycle: extended ≈{ext_steps} steps, "
          f"compiled ≈{batch.step_percentile(50):.0f} steps (median of {batch.runs_executed} runs), "
          f"exact verdict preserved")


def test_token_construction_overhead(benchmark, ab):
    """Lemma 5.1: the fully compiled DAF machine still answers correctly, at a cost."""
    graph = cycle_graph(ab, ["a", "b", "b"])
    protocol = exists_broadcast_protocol(ab, "a")
    machine = nl_daf_machine(protocol)

    def run():
        strong_verdict = protocol.decide_pseudo_stochastic(graph)
        engine = SimulationEngine(max_steps=60_000, stability_window=1_000)
        compiled_result = engine.run_automaton(automaton(machine, "DAF"), graph, seed=1)
        return strong_verdict, compiled_result.verdict, compiled_result.steps

    strong_verdict, compiled_verdict, steps = benchmark(run)
    assert strong_verdict is Verdict.ACCEPT
    assert compiled_verdict is Verdict.ACCEPT
    print(f"\n[Lemma 5.1] exists(a) via strong broadcasts: 1 broadcast suffices in the source model; "
          f"the fully compiled DAF automaton stabilises after ≈{steps} exclusive steps")
